"""Degrees of belief from the maximum-entropy point of a unary knowledge base.

The computation follows Section 6 of the paper: the conditional world count
concentrates on atom-proportion vectors of maximum entropy, so for a unary KB

* the statistical part of the KB fixes (via entropy maximisation) the limiting
  atom proportions ``p*``;
* everything the KB says about a particular constant ``c`` is a quantifier-free
  unary formula ``psi_c(c)``; by direct inference at the concentrated
  proportions, the degree of belief in ``phi(c)`` is the conditional weight
  ``p*(phi and psi_c) / p*(psi_c)``;
* distinct constants are treated independently (Theorem 5.27), so queries that
  are Boolean combinations over several constants multiply out.

The answer is computed along a shrinking tolerance sequence and the tau -> 0
trend is checked, mirroring the outer limit of Definition 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..logic.substitution import constants_of, free_vars
from ..logic.syntax import Formula, TRUE, conj, conjuncts
from ..logic.tolerance import ToleranceVector, default_sequence
from ..logic.vocabulary import Vocabulary
from ..worlds.unary import UnsupportedFormula
from .atoms import atoms_satisfying
from .constraints import extract_constraints
from .solver import MaxEntSolution, solve


@dataclass(frozen=True)
class MaxEntBelief:
    """A degree of belief computed through the maximum-entropy route."""

    value: Optional[float]
    exists: bool
    per_tolerance: Tuple[Tuple[float, Optional[float]], ...]
    solution: MaxEntSolution
    note: str = ""


def _query_constants(query: Formula) -> Tuple[str, ...]:
    if free_vars(query):
        raise UnsupportedFormula("queries must be closed sentences")
    names = sorted(constants_of(query))
    if not names:
        raise UnsupportedFormula(
            "the max-entropy belief calculator handles queries about named individuals; "
            "use the exact counting engine for proportion-valued queries"
        )
    return tuple(names)


def _split_query_by_constant(query: Formula, constants: Tuple[str, ...]) -> Dict[str, Formula]:
    """Split a conjunctive query into per-constant parts.

    Each conjunct must mention exactly one constant; Theorem 5.27 then lets the
    parts be treated independently.
    """
    parts: Dict[str, List[Formula]] = {name: [] for name in constants}
    for part in conjuncts(query):
        mentioned = sorted(constants_of(part))
        if len(mentioned) != 1:
            raise UnsupportedFormula(
                f"query conjunct {part!r} mentions {len(mentioned)} constants; "
                "use the exact counting engine"
            )
        parts[mentioned[0]].append(part)
    return {name: conj(*fs) if fs else TRUE for name, fs in parts.items()}


def belief_from_solution(
    query: Formula,
    solution: MaxEntSolution,
    evidence: Dict[str, Formula],
) -> Optional[float]:
    """Degree of belief in ``query`` at a fixed max-entropy solution."""
    constants = _query_constants(query)
    per_constant = _split_query_by_constant(query, constants)
    table = solution.table
    value = 1.0
    for constant, constant_query in per_constant.items():
        known = evidence.get(constant, TRUE)
        known_atoms = atoms_satisfying(_about_variable(known, constant), table)
        query_atoms = atoms_satisfying(_about_variable(constant_query, constant), table)
        conditional = solution.conditional(query_atoms, known_atoms)
        if conditional is None:
            return None
        value *= conditional
    return value


def _about_variable(formula: Formula, constant: str) -> Formula:
    """Rewrite a ground formula about ``constant`` as a formula about a fresh variable.

    ``Hep(Eric) and Tall(Eric)`` becomes ``Hep(x) and Tall(x)`` so the atom-set
    machinery (which works with one subject) applies uniformly.
    """
    from ..logic.substitution import abstract_constant

    return abstract_constant(formula, constant, "x")


def degree_of_belief_maxent(
    query: Formula,
    knowledge_base: Formula,
    vocabulary: Vocabulary,
    tolerances: Iterable[ToleranceVector] | None = None,
    stability: float = 2e-2,
) -> MaxEntBelief:
    """Compute ``Pr_infinity(query | KB)`` through the maximum-entropy connection.

    Raises :class:`UnsupportedFormula` when the KB or query fall outside the
    unary fragment this route supports; the top-level engine then falls back
    to exact counting.
    """
    tolerance_list = list(tolerances) if tolerances is not None else list(default_sequence())
    per_tolerance: List[Tuple[float, Optional[float]]] = []
    last_solution: Optional[MaxEntSolution] = None
    values: List[Optional[float]] = []
    for tolerance in tolerance_list:
        constraint_set = extract_constraints(knowledge_base, vocabulary, tolerance)
        solution = solve(constraint_set)
        value = belief_from_solution(query, solution, constraint_set.evidence)
        per_tolerance.append((tolerance.max_tolerance, value))
        values.append(value)
        last_solution = solution

    defined = [(tau, v) for (tau, v) in per_tolerance if v is not None]
    if last_solution is None or not defined:
        return MaxEntBelief(None, False, tuple(per_tolerance), last_solution, "undefined")
    final = defined[-1][1]
    if len(defined) >= 2:
        (tau_prev, value_prev), (tau_last, value_last) = defined[-2], defined[-1]
        drift = abs(value_last - value_prev)
        exists = drift <= stability
        note = "" if exists else "value drifts as the tolerance shrinks"
        # The max-entropy value typically approaches its tau -> 0 limit linearly
        # in the tolerance (the active constraint is a band of width tau), so a
        # linear extrapolation to tau = 0 removes the residual bias.
        if exists and abs(tau_prev - tau_last) > 1e-15:
            slope = (value_prev - value_last) / (tau_prev - tau_last)
            extrapolated = value_last - slope * tau_last
            final = min(max(extrapolated, 0.0), 1.0)
    else:
        exists = True
        note = "single tolerance only"
    return MaxEntBelief(final, exists, tuple(per_tolerance), last_solution, note)
