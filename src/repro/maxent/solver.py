"""Entropy maximisation over atom proportions.

Given the linear constraints extracted from a unary knowledge base, the
random-worlds degree of belief is determined by the constrained entropy
maximiser (Section 6): the number of worlds whose atom proportions are near a
vector ``p`` grows as ``exp(N * H(p))``, so as N grows all the conditional
probability mass concentrates around the maximum-entropy point(s) of the
constraint set.

The solver uses scipy's SLSQP with an exact gradient, a feasibility repair
step and a handful of restarts; problems in this library have at most a few
dozen atoms, so this is plenty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..logic.syntax import Formula
from ..logic.tolerance import ToleranceVector, default_sequence
from ..logic.vocabulary import Vocabulary
from ..worlds.unary import AtomTable
from .constraints import ConstraintSet, extract_constraints


class MaxEntInfeasible(ValueError):
    """Raised when the constraint set admits no probability vector."""


@dataclass(frozen=True)
class MaxEntSolution:
    """The result of one entropy maximisation."""

    table: AtomTable
    probabilities: Tuple[float, ...]
    entropy: float
    converged: bool
    max_violation: float

    def probability_of(self, atom_set: Iterable[int]) -> float:
        """Total probability of a set of atoms."""
        return float(sum(self.probabilities[atom] for atom in atom_set))

    def conditional(self, numerator_atoms: Iterable[int], denominator_atoms: Iterable[int]) -> Optional[float]:
        """Conditional probability of one atom set given another (None if undefined)."""
        denominator = self.probability_of(denominator_atoms)
        if denominator <= 0.0:
            return None
        joint = self.probability_of(set(numerator_atoms) & set(denominator_atoms))
        return joint / denominator

    def describe(self) -> str:
        lines = []
        for atom, probability in enumerate(self.probabilities):
            lines.append(f"  {self.table.describe(atom):40s} {probability:.6f}")
        return "\n".join(lines)


def entropy(probabilities: Sequence[float]) -> float:
    """Shannon entropy (natural log) of a probability vector, treating 0 log 0 = 0."""
    total = 0.0
    for value in probabilities:
        if value > 0.0:
            total -= value * math.log(value)
    return total


def solve(constraint_set: ConstraintSet, restarts: int = 4, seed: int = 7) -> MaxEntSolution:
    """Maximise entropy subject to the extracted constraints."""
    num_atoms = constraint_set.num_atoms
    free_atoms = [atom for atom in range(num_atoms) if atom not in constraint_set.zero_atoms]
    if not free_atoms:
        raise MaxEntInfeasible("every atom is forced to proportion zero")

    matrix_rows: List[np.ndarray] = []
    bounds_vector: List[float] = []
    equality_rows: List[np.ndarray] = []
    equality_bounds: List[float] = []
    for constraint in constraint_set.constraints:
        row = constraint.as_array()[free_atoms]
        if not np.any(row):
            # The constraint only involves atoms already forced to zero: it is
            # trivially satisfied (bound >= 0) or trivially infeasible.
            if constraint.equality and abs(constraint.bound) > 1e-12:
                raise MaxEntInfeasible(f"constraint {constraint.label!r} cannot be met")
            if not constraint.equality and constraint.bound < -1e-12:
                raise MaxEntInfeasible(f"constraint {constraint.label!r} cannot be met")
            continue
        if constraint.equality:
            equality_rows.append(row)
            equality_bounds.append(constraint.bound)
        else:
            matrix_rows.append(row)
            bounds_vector.append(constraint.bound)

    inequality_matrix = np.vstack(matrix_rows) if matrix_rows else np.zeros((0, len(free_atoms)))
    inequality_bounds = np.asarray(bounds_vector)
    equality_matrix = np.vstack(equality_rows) if equality_rows else np.zeros((0, len(free_atoms)))
    equality_rhs = np.asarray(equality_bounds)

    def objective(p: np.ndarray) -> float:
        safe = np.clip(p, 1e-15, None)
        return float(np.sum(safe * np.log(safe)))

    def gradient(p: np.ndarray) -> np.ndarray:
        safe = np.clip(p, 1e-15, None)
        return np.log(safe) + 1.0

    scipy_constraints = [
        {"type": "eq", "fun": lambda p: float(np.sum(p) - 1.0), "jac": lambda p: np.ones_like(p)}
    ]
    if equality_matrix.shape[0]:
        scipy_constraints.append(
            {
                "type": "eq",
                "fun": lambda p: equality_rhs - equality_matrix @ p,
                "jac": lambda p: -equality_matrix,
            }
        )
    if inequality_matrix.shape[0]:
        scipy_constraints.append(
            {
                "type": "ineq",
                "fun": lambda p: inequality_bounds - inequality_matrix @ p,
                "jac": lambda p: -inequality_matrix,
            }
        )

    bounds = [(0.0, 1.0)] * len(free_atoms)
    rng = np.random.default_rng(seed)

    best: Optional[Tuple[bool, float, np.ndarray]] = None
    starts = [np.full(len(free_atoms), 1.0 / len(free_atoms))]
    for _ in range(restarts):
        sample = rng.dirichlet(np.ones(len(free_atoms)))
        starts.append(sample)

    for start in starts:
        result = optimize.minimize(
            objective,
            start,
            jac=gradient,
            bounds=bounds,
            constraints=scipy_constraints,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-12},
        )
        candidate = np.clip(result.x, 0.0, 1.0)
        total = candidate.sum()
        if total <= 0:
            continue
        candidate = candidate / total
        violation = _max_violation(candidate, inequality_matrix, inequality_bounds, equality_matrix, equality_rhs)
        value = -objective(candidate)
        key = (violation < 1e-6, value)
        if best is None or key > (best[0], best[1]):
            best = (violation < 1e-6, value, candidate)

    if best is None:
        raise MaxEntInfeasible("the entropy maximisation failed to produce any candidate")

    feasible, value, candidate = best
    full = np.zeros(num_atoms)
    for index, atom in enumerate(free_atoms):
        full[atom] = candidate[index]
    violation = _max_violation(candidate, inequality_matrix, inequality_bounds, equality_matrix, equality_rhs)
    if not feasible and violation > 1e-4:
        raise MaxEntInfeasible(
            f"no feasible proportion vector found (max constraint violation {violation:.3g})"
        )
    return MaxEntSolution(
        table=constraint_set.table,
        probabilities=tuple(float(v) for v in full),
        entropy=entropy(full),
        converged=feasible,
        max_violation=float(violation),
    )


def _max_violation(
    p: np.ndarray,
    inequality_matrix: np.ndarray,
    inequality_bounds: np.ndarray,
    equality_matrix: np.ndarray,
    equality_rhs: np.ndarray,
) -> float:
    violation = abs(float(np.sum(p) - 1.0))
    if inequality_matrix.shape[0]:
        slack = inequality_matrix @ p - inequality_bounds
        violation = max(violation, float(np.max(slack, initial=0.0)))
    if equality_matrix.shape[0]:
        violation = max(violation, float(np.max(np.abs(equality_matrix @ p - equality_rhs))))
    return violation


def solve_knowledge_base(
    knowledge_base: Formula,
    vocabulary: Vocabulary,
    tolerance: ToleranceVector,
) -> MaxEntSolution:
    """Extract constraints from a unary KB at one tolerance and maximise entropy."""
    constraint_set = extract_constraints(knowledge_base, vocabulary, tolerance)
    return solve(constraint_set)


@dataclass(frozen=True)
class MaxEntSequence:
    """Max-entropy solutions for a shrinking sequence of tolerance vectors."""

    tolerances: Tuple[ToleranceVector, ...]
    solutions: Tuple[MaxEntSolution, ...]

    @property
    def final(self) -> MaxEntSolution:
        return self.solutions[-1]

    def limiting_probabilities(self) -> Tuple[float, ...]:
        """Atom probabilities at the smallest tolerance (the tau -> 0 proxy)."""
        return self.final.probabilities


def solve_sequence(
    knowledge_base: Formula,
    vocabulary: Vocabulary,
    tolerances: Iterable[ToleranceVector] | None = None,
) -> MaxEntSequence:
    """Solve the entropy maximisation along a shrinking tolerance sequence."""
    tolerance_list = list(tolerances) if tolerances is not None else list(default_sequence())
    solutions = []
    for tolerance in tolerance_list:
        solutions.append(solve_knowledge_base(knowledge_base, vocabulary, tolerance))
    return MaxEntSequence(tuple(tolerance_list), tuple(solutions))
