"""Exactness lint as a pass of the code-analyzer framework.

Layer contract: the checks that used to live in ``tools/lint_exactness.py``
(that script is now a thin shim over this module), re-emitted as the shared
:class:`~repro.analysis.diagnostics.Diagnostic` model so `repro-lint-code`
reports exactness and lock-discipline findings in one format, one registry,
one ``--format json`` schema.

The checks are unchanged:

* **X001** — ``float(...)`` coercions and float literals in arithmetic
  inside the counting hot paths (``worlds/counting.py``, ``cache.py``,
  ``compile.py``, ``parallel.py``), where degrees of belief are exact
  rationals by contract.  ``# exact-ok`` on the line waives a deliberate
  boundary.
* **X002** — the retired bare ``max_workers=N`` (N > 1) spelling without an
  explicit ``backend=`` in the same call, in Python sources under ``src/``
  and ``examples/`` and in fenced python blocks of README and ``docs/*.md``.

:func:`main` preserves the original script's output and exit code exactly —
``relpath:line:col X00n message`` lines plus the ``N exactness violation(s)``
summary, exit 1 when anything fired.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from ..analysis.diagnostics import ERROR, Diagnostic, SourceSpan, diagnostic, register_codes

register_codes(
    {
        "X001": (ERROR, "float-in-exact-hot-path"),
        "X002": (ERROR, "bare-max-workers"),
    }
)

# The counting hot paths: float-free by contract.
HOT_PATHS = [
    "src/repro/worlds/counting.py",
    "src/repro/worlds/cache.py",
    "src/repro/worlds/compile.py",
    "src/repro/worlds/parallel.py",
]

# Where the retired bare-max_workers spelling is checked.
WORKER_SOURCE_ROOTS = ["src", "examples"]

EXACT_OK = "# exact-ok"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_DOC_WORKERS = re.compile(r"max_workers\s*=\s*(\d+)")


def find_repo_root(start: Optional[Path] = None) -> Path:
    """The nearest ancestor carrying ``pyproject.toml`` (else ``start``)."""
    current = (start or Path.cwd()).resolve()
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current


def _ok_lines(source: str) -> set:
    return {
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if EXACT_OK in line
    }


def _float_violations(path: Path) -> Iterator[Tuple[int, int, str]]:
    source = path.read_text(encoding="utf-8")
    waived = _ok_lines(source)
    tree = ast.parse(source, filename=str(path))
    for node in ast.walk(tree):
        if getattr(node, "lineno", None) in waived:
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            yield node.lineno, node.col_offset + 1, (
                "float() coercion in a counting hot path; keep Fractions exact "
                "(or mark a deliberate boundary with '# exact-ok')"
            )
        elif isinstance(node, ast.BinOp):
            for side in (node.left, node.right):
                if isinstance(side, ast.Constant) and isinstance(side.value, float):
                    yield side.lineno, side.col_offset + 1, (
                        f"float literal {side.value!r} in arithmetic in a counting "
                        "hot path; use Fraction (or mark with '# exact-ok')"
                    )


def _worker_violations(path: Path) -> Iterator[Tuple[int, int, str]]:
    source = path.read_text(encoding="utf-8")
    waived = _ok_lines(source)
    tree = ast.parse(source, filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        keywords = {kw.arg for kw in node.keywords if kw.arg}
        if "backend" in keywords or "options" in keywords:
            continue
        for kw in node.keywords:
            if kw.arg != "max_workers" or kw.lineno in waived:
                continue
            value = kw.value
            if isinstance(value, ast.Constant) and isinstance(value.value, int) and value.value > 1:
                yield kw.lineno, kw.col_offset + 1, (
                    f"bare max_workers={value.value} without an explicit backend= "
                    "(the implied-threads spelling is retired); pass "
                    "backend=\"threads\" alongside it"
                )


def _doc_violations(path: Path) -> Iterator[Tuple[int, int, str]]:
    text = path.read_text(encoding="utf-8")
    for fence in _FENCE.finditer(text):
        block = fence.group(1)
        if "backend" in block:
            continue
        for match in _DOC_WORKERS.finditer(block):
            if int(match.group(1)) <= 1:
                continue
            line = text.count("\n", 0, fence.start(1) + match.start()) + 1
            yield line, 1, (
                f"fenced python block sets max_workers={match.group(1)} without "
                "backend=; documented examples must use the explicit spelling"
            )


def exactness_diagnostics(root: Optional[Path] = None) -> List[Diagnostic]:
    """Every exactness violation in the repo at ``root``, as diagnostics."""
    repo = find_repo_root(root)
    findings: List[Diagnostic] = []

    def emit(code: str, path: Path, line: int, column: int, message: str) -> None:
        findings.append(
            diagnostic(
                code,
                message,
                span=SourceSpan(line=line, column=column, path=str(path.relative_to(repo))),
            )
        )

    for relative in HOT_PATHS:
        path = repo / relative
        if not path.exists():
            continue
        for line, column, message in _float_violations(path):
            emit("X001", path, line, column, message)
    for relative in WORKER_SOURCE_ROOTS:
        source_root = repo / relative
        if not source_root.exists():
            continue
        for path in sorted(source_root.rglob("*.py")):
            for line, column, message in _worker_violations(path):
                emit("X002", path, line, column, message)
    doc_files = [repo / "README.md", *sorted((repo / "docs").glob("*.md"))]
    for path in doc_files:
        if not path.exists():
            continue
        for line, column, message in _doc_violations(path):
            emit("X002", path, line, column, message)
    return findings


def main(root: Optional[Path] = None) -> int:
    """The legacy ``tools/lint_exactness.py`` entry point, byte-compatible."""
    findings = exactness_diagnostics(root)
    for finding in findings:
        print(finding.format())
    print(f"{len(findings)} exactness violation(s)")
    return 1 if findings else 0


__all__ = ["exactness_diagnostics", "find_repo_root", "main"]


if __name__ == "__main__":
    raise SystemExit(main())
