"""``repro-lint-code``: the code-level analyzers as one command-line gate.

Layer contract: path walking, pass selection, output format and exit-code
policy only — findings come from :mod:`repro.statics.locks` (lock
discipline, C6xx/C7xx) and :mod:`repro.statics.exactness` (the X00x checks
absorbed from ``tools/lint_exactness.py``), so the CLI can never disagree
with the library entry points the tests call directly.

Where ``repro-lint`` analyzes the *knowledge bases* embedded in the code,
``repro-lint-code`` analyzes the *code itself*; CI runs both.  Output is
the same ruff-style line format::

    src/repro/worlds/cache.py:532:18 C601 blocking call ... while holding ...

or, with ``--format json``, one JSON object per line (the summary goes to
stderr so stdout stays parseable).  Exit code 1 when any error-level
finding fired; warnings print but do not fail the gate.
``docs/CONCURRENCY.md`` documents the codes and suppression conventions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..analysis.diagnostics import Diagnostic, json_object
from .exactness import exactness_diagnostics, find_repo_root
from .locks import lint_paths


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint-code`` argument parser (exposed for the docs checks)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint-code",
        description="Statically analyze the codebase itself: lock discipline "
        "(blocking calls under locks, lock-order cycles and inversions, "
        "unguarded shared fields, locks held across yield; C6xx/C7xx) plus "
        "the exactness checks (X00x). Prints ruff-style coded diagnostics "
        "and exits non-zero on error-level findings.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        metavar="PATH",
        help="Python files or directories to lock-lint as one corpus (default: src tools)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="text = ruff-style lines; json = one diagnostic object per line on stdout",
    )
    parser.add_argument(
        "--errors-only",
        action="store_true",
        help="print only error-level findings (exit code is unchanged)",
    )
    parser.add_argument(
        "--no-exactness",
        action="store_true",
        help="skip the repo-rooted exactness pass (lock discipline only)",
    )
    return parser


def collect_findings(paths: List[str], *, exactness: bool = True) -> List[Diagnostic]:
    """Every finding of every enabled pass, in report order."""
    findings = lint_paths(paths)
    if exactness:
        findings.extend(exactness_diagnostics(find_repo_root()))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    for raw in args.paths:
        if not Path(raw).exists():
            print(f"repro-lint-code: no such path: {raw}", file=sys.stderr)
            return 1
    findings = collect_findings(list(args.paths), exactness=not args.no_exactness)
    errors = warnings = 0
    for finding in findings:
        if finding.is_error:
            errors += 1
        else:
            warnings += 1
        if args.errors_only and not finding.is_error:
            continue
        if args.format == "json":
            print(json.dumps(json_object(finding), sort_keys=True))
        else:
            print(finding.format())
    summary = f"{errors} error(s), {warnings} warning(s)"
    print(summary, file=sys.stderr if args.format == "json" else sys.stdout)
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
