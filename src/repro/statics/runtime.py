"""Opt-in runtime lock-graph sanitizer: named locks, observed edges, checks.

Layer contract: this module owns the *runtime* half of the concurrency
discipline — :func:`named_lock` (the factory every lock site in the serving
stack constructs its lock through), :class:`InstrumentedLock` (a
``threading.Lock`` wrapper that records acquisition edges) and the
process-wide :class:`LockGraph`.  It imports only the standard library plus
the declarative order manifest (:mod:`repro.statics.order`), so the hot
modules that call :func:`named_lock` (``worlds/cache.py``,
``service/session.py``, ``server/manager.py``, ``core/engine.py``,
``obs/metrics.py``) pay no import weight and — when the sanitizer is off,
the default — zero runtime overhead: :func:`named_lock` then returns a plain
``threading.Lock``.

Enabled via ``REPRO_LOCK_GRAPH=1`` in the environment or ``pytest
--lock-graph`` (see ``tests/conftest.py``), the sanitizer records, per
thread, the stack of held named locks; every acquisition while other locks
are held adds ``held -> acquired`` edges to the global graph.  At teardown
the suite asserts the observed graph is acyclic and that every observed edge
is covered by the declared :data:`~repro.statics.order.LOCK_ORDER` — the
runtime complement of the static analyzer, catching the cross-object
acquisitions (a method call under a lock into another class that locks) that
AST analysis cannot see.  ``docs/CONCURRENCY.md`` documents how the two
halves fit together.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Mapping, Optional, Set, Tuple

from .order import LOCK_ORDER, order_violations

_TRUTHY = {"1", "true", "yes", "on"}

_enabled = os.environ.get("REPRO_LOCK_GRAPH", "").strip().lower() in _TRUTHY

# Per-thread stack of held named locks (names, in acquisition order).
_HELD = threading.local()


def lock_graph_enabled() -> bool:
    """Whether :func:`named_lock` currently builds instrumented locks."""
    return _enabled


def enable_lock_graph(enabled: bool = True) -> None:
    """Turn the sanitizer on (or off) for locks created *from now on*.

    Existing plain locks are not retrofitted, so enable before the objects
    under test are constructed — the pytest hook does this in
    ``pytest_configure``, ahead of every fixture.
    """
    global _enabled
    _enabled = enabled


def _acquire_site() -> Tuple[str, int]:
    """The first caller frame outside this module (a real acquisition site,
    not ``InstrumentedLock.__enter__``)."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return ("<unknown>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)


def _held_stack() -> List[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


class LockGraph:
    """The process-wide record of observed lock-acquisition edges.

    An edge ``(held, acquired)`` means some thread acquired ``acquired``
    while holding ``held``; the first acquisition site (file, line) is kept
    per edge so a violation report points at real code.  The graph's own
    lock is internal bookkeeping, deliberately not itself instrumented.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def record(self, held: List[str], acquired: str, site: Tuple[str, int]) -> None:
        if not held:
            return
        with self._lock:
            for name in held:
                self._edges.setdefault((name, acquired), site)

    def edges(self) -> Dict[Tuple[str, str], Tuple[str, int]]:
        """A snapshot of every observed edge and its first acquisition site."""
        with self._lock:
            return dict(self._edges)

    def clear(self) -> None:
        with self._lock:
            self._edges.clear()

    def cycles(self) -> List[List[str]]:
        """Every elementary cycle reachable in the observed graph.

        Iterative DFS with the classic white/grey/black colouring; each cycle
        is reported once, as the node path that closes it (first node
        repeated last).  An acyclic observed graph — the sanitizer's core
        assertion — returns ``[]``.
        """
        adjacency: Dict[str, List[str]] = {}
        for held, acquired in self.edges():
            adjacency.setdefault(held, []).append(acquired)
            adjacency.setdefault(acquired, [])
        for targets in adjacency.values():
            targets.sort()
        colour: Dict[str, int] = {node: 0 for node in adjacency}  # 0 white, 1 grey, 2 black
        found: List[List[str]] = []
        for root in sorted(adjacency):
            if colour[root]:
                continue
            path: List[str] = []
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                node, index = stack.pop()
                if index == 0:
                    colour[node] = 1
                    path.append(node)
                targets = adjacency[node]
                advanced = False
                for position in range(index, len(targets)):
                    target = targets[position]
                    if colour[target] == 1:
                        cycle = path[path.index(target):] + [target]
                        if cycle not in found:
                            found.append(cycle)
                        continue
                    if colour[target] == 0:
                        stack.append((node, position + 1))
                        stack.append((target, 0))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = 2
                    path.pop()
        return found

    def check(self, order: Optional[Mapping[str, int]] = None) -> List[str]:
        """Every violated invariant as a message; empty means all clear.

        Two families of problem: a cycle in the observed graph (a potential
        deadlock two suites away from happening) and an observed edge the
        declared order does not cover — either direction of drift between
        code and manifest fails.
        """
        problems = [
            "observed lock-acquisition cycle: " + " -> ".join(cycle) for cycle in self.cycles()
        ]
        edges = self.edges()
        for message in order_violations(sorted(edges), LOCK_ORDER if order is None else order):
            problems.append(message)
        return problems

    def report(self, order: Optional[Mapping[str, int]] = None) -> str:
        """A human-readable summary: every edge with its site, then problems."""
        edges = self.edges()
        lines = [f"lock graph: {len(edges)} observed acquisition edge(s)"]
        for (held, acquired), (filename, lineno) in sorted(edges.items()):
            lines.append(f"  {held} -> {acquired}  (first at {filename}:{lineno})")
        problems = self.check(order)
        if problems:
            lines.append(f"{len(problems)} violation(s):")
            lines.extend(f"  {problem}" for problem in problems)
        else:
            lines.append("acyclic and covered by the declared LOCK_ORDER")
        return "\n".join(lines)


# The process-wide graph every InstrumentedLock records into.
GLOBAL_LOCK_GRAPH = LockGraph()


class InstrumentedLock:
    """A ``threading.Lock`` that records who it nests under.

    Same blocking semantics as the lock it wraps; on every successful
    acquisition it appends itself to the thread's held stack and records one
    edge per lock already held.  Used only when the sanitizer is enabled, so
    the serving hot paths never pay for the bookkeeping in production.
    """

    __slots__ = ("name", "_lock", "_graph")

    def __init__(self, name: str, graph: Optional[LockGraph] = None) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._graph = graph if graph is not None else GLOBAL_LOCK_GRAPH

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            stack = _held_stack()
            self._graph.record(list(stack), self.name, _acquire_site())
            stack.append(self.name)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        # Remove the most recent hold of this name; out-of-order releases
        # (legal for threading.Lock) still keep the rest of the stack intact.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == self.name:
                del stack[index]
                break
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"InstrumentedLock({self.name!r}, locked={self.locked()})"


def named_lock(name: str):
    """The lock for one named site of the declared hierarchy.

    The single constructor every lock in the serving stack goes through:
    plain ``threading.Lock`` normally (zero overhead, indistinguishable from
    before), an :class:`InstrumentedLock` recording into the global graph
    when the sanitizer is enabled.  ``name`` is the site's identity in
    :data:`~repro.statics.order.LOCK_ORDER` and in every report.
    """
    if _enabled:
        return InstrumentedLock(name)
    return threading.Lock()


def verify_lock_graph(
    order: Optional[Mapping[str, int]] = None,
) -> Tuple[Dict[Tuple[str, str], Tuple[str, int]], List[str]]:
    """The observed edges and every violation against the declared order."""
    return GLOBAL_LOCK_GRAPH.edges(), GLOBAL_LOCK_GRAPH.check(order)


def observed_lock_names() -> Set[str]:
    """Every lock name that participated in at least one observed edge."""
    names: Set[str] = set()
    for held, acquired in GLOBAL_LOCK_GRAPH.edges():
        names.add(held)
        names.add(acquired)
    return names


__all__ = [
    "GLOBAL_LOCK_GRAPH",
    "InstrumentedLock",
    "LOCK_ORDER",
    "LockGraph",
    "enable_lock_graph",
    "lock_graph_enabled",
    "named_lock",
    "observed_lock_names",
    "verify_lock_graph",
]
