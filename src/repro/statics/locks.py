"""AST-based lock-discipline analyzer: the static half of the sanitizer.

Layer contract: this module turns Python source into coded
:class:`~repro.analysis.diagnostics.Diagnostic` findings about lock usage.
It shares the KB analyzer's diagnostic model and registry (C6xx errors,
C7xx warnings — registered below via
:func:`~repro.analysis.diagnostics.register_codes`) and checks against the
declared hierarchy in :mod:`repro.statics.order`; it never executes the code
it analyzes (that is :mod:`repro.statics.runtime`'s job).

The analysis is two-phase over a whole corpus:

1. **Discovery** — every ``self.attr = threading.Lock()`` / ``RLock()`` /
   ``named_lock("...")`` assignment (and module-level equivalents) names a
   lock.  ``named_lock`` string literals are canonical; otherwise the name
   is ``ClassName.attr``.
2. **Checking** — every function is walked with a held-lock stack tracked
   through nested ``with`` statements.  A ``with`` on ``self.attr`` resolves
   through the enclosing class; an attribute on any other receiver resolves
   only when the attribute name maps to exactly one discovered lock
   corpus-wide (how ``entry.lock`` resolves to ``_InFlight.lock``).
   Methods named ``*_locked`` — the repo convention for helpers that
   require the caller to hold the class lock — are analyzed as if the class
   lock were held on entry.

Checks (each suppressible on its line with ``# lock-ok[CODE]: reason``,
mirroring the exactness lint's ``# exact-ok``):

- **C601** blocking call under a held lock: ``.join()`` (timeout/zero-arg
  form, so ``str.join`` stays quiet), ``.close()``, socket/file I/O,
  executor/solver dispatch, bare ``open``/``input``/``sleep``, and calls
  through a *parameter* of the enclosing function (a user callback — the
  class of bug PR 5 fixed in ``SessionManager``).
- **C602** cycle in the static lock-order graph built from nested
  acquisitions — one diagnostic per strongly connected component.
- **C603** a nested acquisition that inverts (or ties) the declared
  ``LOCK_ORDER`` ranks.
- **C604** a lock held across ``yield`` in a generator (``@contextmanager``
  functions are exempt — holding across the wrapped ``yield`` is their job).
- **C701** a field written under the class lock in some methods but
  read/written bare in others (guard inference — the class of bug PR 8
  fixed in ``cache_info``).
- **C702** a ``# lock-ok`` suppression with no reason (not itself
  suppressible).

Known limits, by design: explicit ``.acquire()``/``.release()`` pairs are
not tracked (the repo's only such sites manage their own ``holding`` flags),
and cross-function propagation is limited to the ``*_locked`` naming
convention — the runtime sanitizer covers the dynamic composition the AST
cannot see.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    SourceSpan,
    diagnostic,
    register_codes,
)
from .order import LOCK_ORDER, rank_of

register_codes(
    {
        "C601": (ERROR, "blocking-call-under-lock"),
        "C602": (ERROR, "lock-order-cycle"),
        "C603": (ERROR, "lock-order-inversion"),
        "C604": (ERROR, "lock-held-across-yield"),
        "C701": (WARNING, "unguarded-shared-field"),
        "C702": (WARNING, "suppression-without-reason"),
    }
)

# Attribute calls that block the calling thread: worker/pool joins and
# teardown, socket and file I/O, futures, sleeps.
_BLOCKING_ATTRS = {
    "accept",
    "close",
    "connect",
    "flush",
    "read",
    "readline",
    "recv",
    "result",
    "send",
    "sendall",
    "shutdown",
    "sleep",
    "write",
}
# Solver / executor dispatch: arbitrary user work runs inside.
_DISPATCH_ATTRS = {"dispatch", "solve", "submit", "submit_many"}
# Bare names that block.
_BLOCKING_NAMES = {"input", "open", "sleep"}

_SUPPRESSION_RE = re.compile(
    r"#\s*lock-ok(?:\[(?P<codes>[A-Z0-9,\s]+)\])?(?::\s*(?P<reason>\S.*))?"
)


@dataclass
class _Suppression:
    codes: Optional[Set[str]]  # None = all lock codes
    reason: Optional[str]
    column: int


@dataclass
class _FieldAccess:
    method: str
    is_write: bool
    held: Tuple[str, ...]
    span: SourceSpan


@dataclass
class _Module:
    path: str
    tree: ast.Module
    # attr name -> canonical lock name, for `self.X` in this module's classes
    class_locks: Dict[Tuple[str, str], str] = field(default_factory=dict)
    # module-level bare name -> canonical lock name
    module_locks: Dict[str, str] = field(default_factory=dict)
    suppressions: Dict[int, _Suppression] = field(default_factory=dict)


@dataclass
class _Ctx:
    module: _Module
    class_name: Optional[str]
    func_name: str
    params: Set[str]
    held: List[str]
    aliases: Dict[str, str]
    is_contextmanager: bool


def _is_lock_constructor(value: ast.AST) -> Tuple[bool, Optional[str]]:
    """Whether ``value`` constructs a lock; the named_lock literal if any."""
    if not isinstance(value, ast.Call):
        return False, None
    func = value.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name in {"Lock", "RLock"}:
        return True, None
    if name == "named_lock":
        if value.args and isinstance(value.args[0], ast.Constant) and isinstance(value.args[0].value, str):
            return True, value.args[0].value
        return True, None
    return False, None


def _span(node: ast.AST, path: str) -> SourceSpan:
    return SourceSpan(line=node.lineno, column=node.col_offset + 1, path=path)


def _decorator_is_contextmanager(func: ast.AST) -> bool:
    decorators = getattr(func, "decorator_list", [])
    for decorator in decorators:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        try:
            text = ast.unparse(target)
        except Exception:
            continue
        if text.endswith("contextmanager"):
            return True
    return False


class LockLinter:
    """Corpus-wide lock-discipline analysis producing coded diagnostics.

    Feed it sources with :meth:`add_source` / :meth:`add_path`, then call
    :meth:`run`.  ``order`` defaults to the repo's declared
    :data:`~repro.statics.order.LOCK_ORDER`; the fixture tests inject their
    own manifests.
    """

    def __init__(self, order: Optional[Mapping[str, int]] = None) -> None:
        self._order = LOCK_ORDER if order is None else order
        self._modules: List[_Module] = []
        # attr name -> set of canonical lock names, corpus-wide (for the
        # unique-attribute resolution of non-self receivers).
        self._attr_locks: Dict[str, Set[str]] = {}
        # (held, acquired) -> first acquisition span, corpus-wide.
        self._edges: Dict[Tuple[str, str], SourceSpan] = {}
        # (class, attr) -> accesses, for guard inference.
        self._fields: Dict[Tuple[str, str], List[_FieldAccess]] = {}
        self._findings: List[Diagnostic] = []

    # ------------------------------------------------------------------ input

    def add_source(self, source: str, path: str) -> None:
        tree = ast.parse(source, filename=path)
        module = _Module(path=path, tree=tree)
        # Scan real COMMENT tokens (not docstrings that merely mention the
        # marker) for suppressions.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError):
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            codes_text = match.group("codes")
            codes = (
                {code.strip() for code in codes_text.split(",") if code.strip()}
                if codes_text
                else None
            )
            module.suppressions[token.start[0]] = _Suppression(
                codes=codes,
                reason=match.group("reason"),
                column=token.start[1] + match.start() + 1,
            )
        self._modules.append(module)

    def add_path(self, path: "str | Path") -> None:
        file_path = Path(path)
        self.add_source(file_path.read_text(encoding="utf-8"), str(file_path))

    # ------------------------------------------------------------------ phases

    def _discover(self, module: _Module) -> None:
        """Phase 1: name every lock the module constructs."""

        def note_class_lock(class_name: str, attr: str, literal: Optional[str]) -> None:
            canonical = literal if literal is not None else f"{class_name}.{attr}"
            module.class_locks[(class_name, attr)] = canonical
            self._attr_locks.setdefault(attr, set()).add(canonical)

        for node in module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                is_lock, literal = _is_lock_constructor(node.value)
                if is_lock and isinstance(target, ast.Name):
                    module.module_locks[target.id] = literal if literal is not None else target.id
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in ast.walk(node):
                value = getattr(statement, "value", None)
                if value is None:
                    continue
                is_lock, literal = _is_lock_constructor(value)
                if not is_lock:
                    continue
                targets: List[ast.AST] = []
                if isinstance(statement, ast.Assign):
                    targets = list(statement.targets)
                elif isinstance(statement, ast.AnnAssign):
                    targets = [statement.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        note_class_lock(node.name, target.attr, literal)
                    elif isinstance(target, ast.Name):
                        note_class_lock(node.name, target.id, literal)

    def _class_lock_names(self, module: _Module, class_name: str) -> List[str]:
        return [
            name
            for (owner, _attr), name in module.class_locks.items()
            if owner == class_name
        ]

    def _entry_locks_for(self, module: _Module, class_name: Optional[str], func_name: str) -> List[str]:
        """Locks assumed held on entry: the ``*_locked`` convention."""
        if class_name is None or not func_name.endswith("_locked"):
            return []
        preferred = module.class_locks.get((class_name, "_lock"))
        if preferred is not None:
            return [preferred]
        return sorted(self._class_lock_names(module, class_name))

    def _resolve_lock(self, expr: ast.AST, ctx: _Ctx) -> Optional[str]:
        """The canonical name of the lock ``expr`` denotes, if any."""
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            receiver, attr = expr.value.id, expr.attr
            if receiver == "self" and ctx.class_name is not None:
                direct = ctx.module.class_locks.get((ctx.class_name, attr))
                if direct is not None:
                    return direct
            candidates = self._attr_locks.get(attr, set())
            if len(candidates) == 1:
                return next(iter(candidates))
            return None
        if isinstance(expr, ast.Name):
            if expr.id in ctx.aliases:
                return ctx.aliases[expr.id]
            return ctx.module.module_locks.get(expr.id)
        return None

    # -------------------------------------------------------------- the walk

    def _scan_functions(self, module: _Module) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(module, None, node)
            elif isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(module, node.name, member)

    def _scan_function(
        self,
        module: _Module,
        class_name: Optional[str],
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> None:
        args = func.args
        params = {
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if arg.arg != "self"
        }
        ctx = _Ctx(
            module=module,
            class_name=class_name,
            func_name=func.name,
            params=params,
            held=self._entry_locks_for(module, class_name, func.name),
            aliases={},
            is_contextmanager=_decorator_is_contextmanager(func),
        )
        for statement in func.body:
            self._scan_node(statement, ctx)

    def _scan_node(self, node: ast.AST, ctx: _Ctx) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            # Nested defs run later, on their own thread-of-control: a fresh
            # scan (without the enclosing held stack) would be unsound in the
            # other direction, so nested functions simply aren't tracked.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in node.items:
                self._scan_node(item.context_expr, ctx)
                name = self._resolve_lock(item.context_expr, ctx)
                if name is not None:
                    span = _span(item.context_expr, ctx.module.path)
                    for held_name in ctx.held:
                        self._edges.setdefault((held_name, name), span)
                    ctx.held.append(name)
                    pushed += 1
            for statement in node.body:
                self._scan_node(statement, ctx)
            for _ in range(pushed):
                ctx.held.pop()
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            alias = self._resolve_lock(node.value, ctx)
            if alias is not None:
                ctx.aliases[node.targets[0].id] = alias
        if isinstance(node, ast.Call):
            self._check_call(node, ctx)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._check_yield(node, ctx)
        elif isinstance(node, ast.Attribute):
            self._note_field_access(node, node.ctx, ctx)
        elif isinstance(node, (ast.Subscript,)) and isinstance(node.ctx, (ast.Store, ast.Del)):
            if isinstance(node.value, ast.Attribute):
                self._note_field_access(node.value, node.ctx, ctx)
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, ctx)

    # ------------------------------------------------------------ the checks

    def _check_call(self, node: ast.Call, ctx: _Ctx) -> None:
        if not ctx.held:
            return
        reason = self._blocking_reason(node, ctx)
        if reason is None:
            return
        try:
            callee = ast.unparse(node.func)
        except Exception:
            callee = "<call>"
        self._findings.append(
            diagnostic(
                "C601",
                f"{reason} `{callee}(...)` while holding {ctx.held[-1]}",
                span=_span(node, ctx.module.path),
                hint="move the call outside the lock, or annotate `# lock-ok[C601]: <reason>`",
                subject=f"{ctx.class_name + '.' if ctx.class_name else ''}{ctx.func_name}",
            )
        )

    def _blocking_reason(self, node: ast.Call, ctx: _Ctx) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr == "join":
                # str.join(iterable) takes one non-numeric argument; thread
                # and pool joins take none, a numeric timeout, or timeout=.
                timeout_kw = any(kw.arg == "timeout" for kw in node.keywords)
                numeric_arg = (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, (int, float))
                )
                if not node.args and not node.keywords or timeout_kw or numeric_arg:
                    return "blocking join"
                return None
            if attr in _BLOCKING_ATTRS:
                return "blocking call"
            if attr in _DISPATCH_ATTRS:
                return "solver/executor dispatch"
            return None
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAMES:
                return "blocking call"
            if func.id in ctx.params:
                return "call through parameter (user callback)"
        return None

    def _check_yield(self, node: ast.AST, ctx: _Ctx) -> None:
        if not ctx.held or ctx.is_contextmanager:
            return
        self._findings.append(
            diagnostic(
                "C604",
                f"generator yields while holding {ctx.held[-1]}; the lock stays "
                "held for as long as the consumer pauses",
                span=_span(node, ctx.module.path),
                hint="snapshot under the lock, then yield outside it",
                subject=f"{ctx.class_name + '.' if ctx.class_name else ''}{ctx.func_name}",
            )
        )

    def _note_field_access(self, node: ast.Attribute, access_ctx: ast.AST, ctx: _Ctx) -> None:
        if ctx.class_name is None or ctx.func_name == "__init__":
            return
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        attr = node.attr
        if (ctx.class_name, attr) in ctx.module.class_locks or attr.startswith("__"):
            return
        self._fields.setdefault((ctx.class_name, attr), []).append(
            _FieldAccess(
                method=ctx.func_name,
                is_write=isinstance(access_ctx, (ast.Store, ast.Del)),
                held=tuple(ctx.held),
                span=_span(node, ctx.module.path),
            )
        )

    # -------------------------------------------------------- corpus checks

    def _guard_inference(self) -> None:
        for (class_name, attr), accesses in sorted(self._fields.items()):
            guards = {
                lock
                for access in accesses
                if access.is_write
                for lock in access.held
            }
            if not guards:
                continue
            bare = [
                access
                for access in accesses
                if not access.held and not access.method.endswith("_locked")
            ]
            if not bare:
                continue
            first = min(bare, key=lambda access: (access.span.path or "", access.span.line, access.span.column))
            guard_list = ", ".join(sorted(guards))
            self._findings.append(
                diagnostic(
                    "C701",
                    f"field {class_name}.{attr} is written under {guard_list} "
                    f"but accessed without it in {first.method}()",
                    span=first.span,
                    hint="take the guarding lock (or rename the method *_locked if the caller holds it)",
                    subject=f"{class_name}.{attr}",
                )
            )

    def _order_checks(self) -> None:
        # C603: a nested acquisition that inverts or ties declared ranks.
        for (held, acquired), span in sorted(
            self._edges.items(), key=lambda item: ((item[1].path or ""), item[1].line, item[1].column)
        ):
            if held == acquired:
                continue  # the self-edge is reported as a C602 cycle
            held_rank = rank_of(held, self._order)
            acquired_rank = rank_of(acquired, self._order)
            if held_rank is None or acquired_rank is None:
                continue
            if held_rank > acquired_rank:
                self._findings.append(
                    diagnostic(
                        "C603",
                        f"acquiring {acquired} (rank {acquired_rank}) while holding "
                        f"{held} (rank {held_rank}) inverts LOCK_ORDER",
                        span=span,
                        hint="acquire in declared order, or restructure to drop the outer lock first",
                    )
                )
            elif held_rank == acquired_rank:
                self._findings.append(
                    diagnostic(
                        "C603",
                        f"acquiring {acquired} while holding {held}: same-rank locks "
                        f"(rank {held_rank}) must never nest",
                        span=span,
                        hint="same-rank locks are leaves; never nest them",
                    )
                )

        # C602: cycles.  One diagnostic per strongly connected component,
        # anchored at the component's source-order-last acquisition edge so
        # the finding is deterministic and fires exactly once.
        for component in self._cyclic_components():
            component_edges = [
                ((held, acquired), span)
                for (held, acquired), span in self._edges.items()
                if held in component and acquired in component
            ]
            (held, acquired), span = max(
                component_edges,
                key=lambda item: ((item[1].path or ""), item[1].line, item[1].column),
            )
            cycle = self._cycle_path(held, acquired, component)
            self._findings.append(
                diagnostic(
                    "C602",
                    "lock-order cycle: " + " -> ".join(cycle),
                    span=span,
                    hint="break the cycle by acquiring these locks in one global order",
                )
            )

    def _cyclic_components(self) -> List[Set[str]]:
        """Strongly connected components that contain a cycle (Tarjan)."""
        adjacency: Dict[str, List[str]] = {}
        for held, acquired in self._edges:
            adjacency.setdefault(held, []).append(acquired)
            adjacency.setdefault(acquired, [])
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[Set[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: (node, iterator position) frames.
            work = [(node, 0)]
            while work:
                current, position = work.pop()
                if position == 0:
                    index_of[current] = low[current] = counter[0]
                    counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recurse = False
                targets = adjacency[current]
                for offset in range(position, len(targets)):
                    target = targets[offset]
                    if target not in index_of:
                        work.append((current, offset + 1))
                        work.append((target, 0))
                        recurse = True
                        break
                    if target in on_stack:
                        low[current] = min(low[current], index_of[target])
                if recurse:
                    continue
                if low[current] == index_of[current]:
                    component: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == current:
                            break
                    if len(component) > 1 or (current, current) in self._edges:
                        components.append(component)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])

        for node in sorted(adjacency):
            if node not in index_of:
                strongconnect(node)
        return components

    def _cycle_path(self, held: str, acquired: str, component: Set[str]) -> List[str]:
        """A concrete cycle through the anchor edge: held -> acquired -> ... -> held."""
        if held == acquired:
            return [held, held]
        # BFS from `acquired` back to `held` inside the component.
        parents: Dict[str, str] = {}
        frontier = [acquired]
        seen = {acquired}
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for source, target in self._edges:
                    if source != node or target not in component or target in seen:
                        continue
                    parents[target] = node
                    if target == held:
                        chain = [held]
                        while chain[-1] != acquired:
                            chain.append(parents[chain[-1]])
                        chain.reverse()  # acquired, ..., held
                        return [held, *chain]
                    seen.add(target)
                    next_frontier.append(target)
            frontier = next_frontier
        return [held, acquired, held]

    def _suppression_findings(self) -> None:
        for module in self._modules:
            for line, suppression in sorted(module.suppressions.items()):
                if suppression.reason:
                    continue
                self._findings.append(
                    diagnostic(
                        "C702",
                        "lock-ok suppression without a reason",
                        span=SourceSpan(line=line, column=suppression.column, path=module.path),
                        hint="write `# lock-ok[CODE]: <why this is safe>`",
                    )
                )

    # ---------------------------------------------------------------- output

    def run(self) -> List[Diagnostic]:
        self._attr_locks.clear()
        self._edges.clear()
        self._fields.clear()
        self._findings.clear()
        for module in self._modules:
            self._discover(module)
        for module in self._modules:
            self._scan_functions(module)
        self._guard_inference()
        self._order_checks()
        self._suppression_findings()
        suppressions = {
            module.path: module.suppressions for module in self._modules
        }
        kept: List[Diagnostic] = []
        for finding in self._findings:
            span = finding.span or SourceSpan()
            per_file = suppressions.get(span.path or "", {})
            suppression = per_file.get(span.line)
            if (
                finding.code != "C702"
                and suppression is not None
                and (suppression.codes is None or finding.code in suppression.codes)
            ):
                continue
            kept.append(finding)
        kept.sort(
            key=lambda finding: (
                (finding.span.path if finding.span else "") or "",
                finding.span.line if finding.span else 0,
                finding.span.column if finding.span else 0,
                finding.code,
            )
        )
        return kept

    def edges(self) -> Dict[Tuple[str, str], SourceSpan]:
        """The static lock-order graph (populated by :meth:`run`)."""
        return dict(self._edges)


def lint_source(
    source: str, path: str = "<source>", order: Optional[Mapping[str, int]] = None
) -> List[Diagnostic]:
    """Analyze one source string (the fixture-test entry point)."""
    linter = LockLinter(order=order)
    linter.add_source(source, path)
    return linter.run()


def iter_python_files(paths: Iterable["str | Path"]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(
    paths: Sequence["str | Path"], order: Optional[Mapping[str, int]] = None
) -> List[Diagnostic]:
    """Analyze every Python file under ``paths`` as one corpus."""
    linter = LockLinter(order=order)
    for file_path in iter_python_files(paths):
        linter.add_path(file_path)
    return linter.run()


__all__ = [
    "LockLinter",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
