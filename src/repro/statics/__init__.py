"""Code-level static analysis and runtime concurrency sanitizing.

Where :mod:`repro.analysis` analyzes *knowledge bases*, this package
analyzes *the code itself*:

- :mod:`repro.statics.order` — the declared ``LOCK_ORDER`` hierarchy;
- :mod:`repro.statics.runtime` — ``named_lock`` / ``InstrumentedLock`` /
  the process-wide ``LockGraph`` sanitizer (``pytest --lock-graph``);
- :mod:`repro.statics.locks` — the AST lock-discipline analyzer (C6xx/C7xx);
- :mod:`repro.statics.exactness` — the X00x exactness checks;
- :mod:`repro.statics.cli` — the ``repro-lint-code`` entry point.

The analyzer halves are loaded lazily (PEP 562): the hot serving modules
import :func:`named_lock` from here at startup, and eagerly importing
:mod:`.locks` would pull :mod:`repro.analysis` → :mod:`repro.core` →
:mod:`repro.worlds.cache`, which itself imports this package — a cycle.
Only the dependency-free ``order``/``runtime`` pair loads at import time.
"""

from __future__ import annotations

from .order import LOCK_ORDER  # noqa: F401
from .runtime import (  # noqa: F401
    GLOBAL_LOCK_GRAPH,
    InstrumentedLock,
    LockGraph,
    enable_lock_graph,
    lock_graph_enabled,
    named_lock,
    verify_lock_graph,
)

_LAZY = {
    "LockLinter": "locks",
    "lint_paths": "locks",
    "lint_source": "locks",
    "exactness_diagnostics": "exactness",
}

__all__ = [
    "GLOBAL_LOCK_GRAPH",
    "InstrumentedLock",
    "LOCK_ORDER",
    "LockGraph",
    "LockLinter",
    "enable_lock_graph",
    "exactness_diagnostics",
    "lint_paths",
    "lint_source",
    "lock_graph_enabled",
    "named_lock",
    "verify_lock_graph",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.statics' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
