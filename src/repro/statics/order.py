"""The declared lock hierarchy of the serving stack.

Layer contract: this module is pure data plus order arithmetic — no AST
walking (that is :mod:`repro.statics.locks`) and no instrumentation (that is
:mod:`repro.statics.runtime`).  It declares the *intended* acquisition order
of every named lock in the codebase; the static lock graph and the runtime
sanitizer both check against it, so "the manager lock is taken before any
cache lock" is an executable claim, not a comment.

A thread holding lock ``a`` may acquire lock ``b`` only when
``LOCK_ORDER[a] < LOCK_ORDER[b]`` — ranks strictly increase along every
acquisition chain, which makes the declared order acyclic by construction
and every order-respecting execution deadlock-free.  Locks that share a rank
(the metrics leaf locks) must never nest with each other at all.

The hierarchy, top (outermost) to bottom (leaf), mirrors the serving layers
— ``docs/CONCURRENCY.md`` is the human-form table:

0. the traffic recorder's event sink (outermost: it wraps whole serving
   calls and its lock guards only the event list, never nesting),
1. the HTTP session manager,
2. the engine's shim-session map,
3. the belief session's derived-engine/solver state,
4. the per-key in-flight build locks (memo before cache: a memoised query
   evaluation may trigger a class enumeration, never the reverse),
5. the world-count cache, then its memo/program sub-caches,
6. the per-request cache event log,
7. the metrics registry/family dictionaries and metric leaf locks.

Deliberately *outside* the hierarchy: :class:`~repro.server.manager`'s
per-fingerprint build gate.  It is acquired before publication (a freshly
created, uncontended lock — the acquire cannot block) and thereafter only
ever awaited bare, so it has no order to declare and stays a plain
``threading.Lock``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Tuple

# name -> rank.  Lower rank = acquired earlier (outermost).  Names match the
# ``named_lock(...)`` site labels; ``_InFlight.lock`` is the static analyzer's
# coarse identity for both in-flight lock families (it cannot see which owner
# a given ``entry.lock`` belongs to), ranked between the two runtime names it
# covers so either view refines the same order.
LOCK_ORDER: Mapping[str, int] = {
    "TraceRecorder._lock": 5,
    "SessionManager._lock": 10,
    "RandomWorlds._sessions_lock": 20,
    "BeliefSession._lock": 30,
    "QueryMemoTable._inflight": 40,
    "_InFlight.lock": 42,
    "WorldCountCache._inflight": 44,
    "WorldCountCache._lock": 50,
    "QueryMemoTable._lock": 55,
    "CompiledProgramCache._lock": 58,
    "CacheEventLog._lock": 70,
    "MetricsRegistry._lock": 80,
    "MetricFamily._lock": 85,
    "Counter._lock": 90,
    "Gauge._lock": 90,
    "Histogram._lock": 90,
}


def rank_of(name: str, order: Optional[Mapping[str, int]] = None) -> Optional[int]:
    """The declared rank of a lock name (``None`` when undeclared)."""
    return (LOCK_ORDER if order is None else order).get(name)


def edge_problem(
    held: str, acquired: str, order: Optional[Mapping[str, int]] = None
) -> Optional[str]:
    """Why acquiring ``acquired`` while holding ``held`` breaks the order.

    Returns ``None`` for a conforming edge.  Three failure shapes: either
    lock is undeclared (the manifest must cover every observed edge), the
    edge inverts the declared ranks, or the two locks share a rank (same-rank
    locks must never nest).
    """
    table = LOCK_ORDER if order is None else order
    held_rank = table.get(held)
    acquired_rank = table.get(acquired)
    if held_rank is None or acquired_rank is None:
        missing = [name for name, rank in ((held, held_rank), (acquired, acquired_rank)) if rank is None]
        return f"edge {held} -> {acquired}: {', '.join(missing)} not declared in LOCK_ORDER"
    if held_rank > acquired_rank:
        return (
            f"edge {held} -> {acquired} inverts the declared order "
            f"(rank {held_rank} must stay below rank {acquired_rank})"
        )
    if held_rank == acquired_rank and held != acquired:
        return f"edge {held} -> {acquired}: same-rank locks (rank {held_rank}) must never nest"
    if held == acquired:
        return f"edge {held} -> {held}: a lock may never be re-acquired while held"
    return None


def order_violations(
    edges: Iterable[Tuple[str, str]], order: Optional[Mapping[str, int]] = None
) -> List[str]:
    """Every observed edge the declared order does not cover, as messages."""
    problems: List[str] = []
    for held, acquired in edges:
        problem = edge_problem(held, acquired, order)
        if problem is not None:
            problems.append(problem)
    return problems
