"""KB-scoped sessions: the canonical entry point of the belief service.

Layer contract: this module owns per-KB lifecycle and warm state — one
normalisation, one fingerprint, one consistency check, one engine stack per
session — and delegates answering to the solver registry.  Multi-session
policy (who may open, when to evict, how much runs at once) belongs one
layer up, in :mod:`repro.server.manager`.

A :class:`BeliefSession` binds one normalised knowledge base to one engine
stack.  The KB is parsed, vocabulary-fingerprinted and consistency-checked
exactly once at :func:`open_session`; every :meth:`~BeliefSession.submit`,
:meth:`~BeliefSession.submit_many` and :meth:`~BeliefSession.stream` call
then reuses the session's :class:`~repro.worlds.cache.WorldCountCache`, query
memo table and counting backend, so a warm session amortises all per-KB work
across arbitrarily many requests (experiment E22 gates the speedup).

Requests carry a solver-registry method key, so every inference family —
random worlds, maximum entropy, the reference-class baselines, the
default-reasoning systems — answers through the same request path and
returns the same response schema.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .. import analysis as _analysis
from ..analysis.diagnostics import AnalysisError
from ..core.engine import RandomWorlds, RandomWorldsError
from ..core.knowledge_base import KnowledgeBase
from ..logic.syntax import Formula
from ..logic.tolerance import ToleranceVector
from ..obs import MetricsRegistry
from ..statics.runtime import named_lock
from ..worlds.cache import CacheEventLog, CacheInfo, tracking_cache_events, vocabulary_fingerprint
from ..worlds.counting import InconsistentKnowledgeBase
from ..worlds.parallel import CountingExecutor, executor_scope, resolve_backend
from .messages import BeliefResponse, CacheDelta, ErrorResponse, QueryRequest
from .registry import SolverRegistry, UnsupportedRequest, default_registry

RequestLike = Union[QueryRequest, Formula, str]
KnowledgeBaseLike = Union[KnowledgeBase, Formula, str]

# The pre-flight analysis modes a session accepts (see docs/ANALYSIS.md):
# "off" skips the analyzer entirely, "warn" attaches diagnostics to the
# session and per-query response metadata, "strict" additionally refuses
# error-level KBs/queries with AnalysisError.
ANALYZE_MODES = ("off", "warn", "strict")

# How many derived engines (one per distinct per-request tolerance/domain
# override pair) a session keeps warm.  Override values arrive off the wire,
# so the map must be bounded; evicting one only loses the engine shell — the
# world-count cache is shared and survives.
DERIVED_ENGINE_LIMIT = 8

# How BeliefSession.stream treats a request whose evaluation raises a
# request-scoped error: "respond" (the default) yields an ErrorResponse row
# and keeps streaming, "raise" propagates immediately (the pre-streaming
# behaviour).  Session-scoped failures propagate under either mode.
STREAM_ERROR_MODES = ("respond", "raise")


def error_code_for(error: BaseException) -> Optional[str]:
    """The wire error code for a request-scoped failure, ``None`` otherwise.

    This is the same exception→code vocabulary the HTTP layer's error
    translator uses (see docs/DEPLOYMENT.md's error model), restricted to
    failures caused by one request: a code here means "this request was bad
    or unanswerable, the session is fine"; ``None`` means the failure is not
    attributable to the request (a genuine bug, a session-scoped error) and
    must propagate.  Order matters — :class:`AnalysisError` and
    :class:`UnsupportedRequest` subclass the broad builtins caught last.
    """
    if isinstance(error, AnalysisError):
        return "analysis-failed"
    if isinstance(error, InconsistentKnowledgeBase):
        return "inconsistent-kb"
    if isinstance(error, UnsupportedRequest):
        return "unsupported-request"
    if isinstance(error, RandomWorldsError):
        return "query-failed"
    if isinstance(error, (KeyError, TypeError, ValueError)):
        return "bad-request"
    return None


def check_consistency(knowledge_base: KnowledgeBase) -> None:
    """Structurally reject obviously unsatisfiable knowledge bases.

    Catches malformed statistics (empty or out-of-range intervals) and
    directly contradictory ground facts.  Deliberately cheap — deep
    (model-theoretic) inconsistency still surfaces as
    :class:`InconsistentKnowledgeBase` from the counting engine at query
    time, exactly as on the legacy path.  The checks themselves live in the
    static analyzer (:func:`repro.analysis.consistency_diagnostics` — codes
    E204/E205/E206), so this gate and ``analyze=`` modes can never disagree;
    the first finding raises with its message.
    """
    for finding in _analysis.consistency_diagnostics(knowledge_base):
        raise InconsistentKnowledgeBase(finding.message)


def kb_fingerprint(knowledge_base: KnowledgeBase) -> str:
    """A stable hex fingerprint of the KB's vocabulary and sentences."""
    payload = repr(
        (
            vocabulary_fingerprint(knowledge_base.vocabulary),
            tuple(repr(sentence) for sentence in knowledge_base.sentences),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class BeliefSession:
    """One knowledge base bound to one warm engine stack.

    Parameters
    ----------
    knowledge_base:
        The KB (a :class:`KnowledgeBase`, a formula, or text), normalised
        once at construction.
    engine:
        An existing :class:`RandomWorlds` engine to bind (its cache, memo
        table and backend become the session's warm state).  ``None`` builds
        a private engine from ``engine_options``.
    registry:
        The solver registry to dispatch through; defaults to the shared
        :func:`~repro.service.registry.default_registry`.
    consistency_check:
        Run :func:`check_consistency` once at open (the default).
    analyze:
        Pre-flight analysis mode: ``"off"`` (default), ``"warn"`` (run
        :func:`repro.analysis.analyze` once at open, keep the report on
        ``session.analysis`` and attach per-query diagnostics to response
        metadata) or ``"strict"`` (additionally refuse error-level KBs and
        queries with :class:`~repro.analysis.AnalysisError`).
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to instrument against.  When
        supplied, every ``submit`` records its latency into
        ``repro_session_submit_latency_ms{solver=...}``, its outcome into
        ``repro_session_requests_total{solver=..., outcome=ok|error}``, its
        exact per-request cache movement into
        ``repro_session_cache_events_total{event=...}`` and its
        compiled-vs-fallback evaluation counts into
        ``repro_session_query_evaluations_total{mode=...}``.  ``None`` (the
        default) records nothing.
    engine_options:
        Passed to :class:`RandomWorlds` when no engine is supplied
        (``tolerances``, ``domain_sizes``, ``cache``, ``memo``, ``backend``,
        ``max_workers``, ``compile``, ...); pass a whole bundle at once with
        ``options=EngineOptions(...)``.
    """

    def __init__(
        self,
        knowledge_base: KnowledgeBaseLike,
        *,
        engine: Optional[RandomWorlds] = None,
        registry: Optional[SolverRegistry] = None,
        consistency_check: bool = True,
        analyze: str = "off",
        metrics: Optional[MetricsRegistry] = None,
        **engine_options: Any,
    ):
        if analyze not in ANALYZE_MODES:
            raise ValueError(f"analyze must be one of {ANALYZE_MODES}, got {analyze!r}")
        # One normalisation path for both surfaces: the engine's own.
        self._kb = RandomWorlds._as_knowledge_base(knowledge_base)
        self._registry = registry if registry is not None else default_registry()
        if engine is None:
            engine = RandomWorlds(**engine_options)
            self._owns_engine = True
        elif engine_options:
            raise ValueError("pass engine options or an engine instance, not both")
        else:
            self._owns_engine = False
        self._engine = engine
        self._fingerprint = kb_fingerprint(self._kb)
        self._analyze_mode = analyze
        self._analysis: Optional[_analysis.AnalysisReport] = None
        if analyze != "off":
            # Static only — the engine's caches stay untouched, so a strict
            # rejection costs milliseconds and zero cache misses.
            report = _analysis.analyze(
                self._kb, options=_analysis.AnalysisOptions(domain_sizes=self._engine.domain_sizes)
            )
            self._analysis = report
            if analyze == "strict" and report.has_errors:
                summary = "; ".join(f"{d.code} {d.message}" for d in report.errors)
                raise AnalysisError(
                    f"knowledge base rejected by pre-flight analysis: {summary}", report
                )
        if consistency_check:
            check_consistency(self._kb)
        self._derived: "OrderedDict[Tuple, RandomWorlds]" = OrderedDict()
        self._state: Dict[Tuple, Any] = {}
        self._lock = named_lock("BeliefSession._lock")
        self._request_ids = itertools.count(1)
        self._metrics = metrics
        if metrics is not None:
            self._submit_latency = metrics.histogram(
                "session_submit_latency_ms",
                "submit() wall-clock per solver, milliseconds",
                labelnames=("solver",),
            )
            self._requests_total = metrics.counter(
                "session_requests_total",
                "submit() calls by solver and outcome",
                labelnames=("solver", "outcome"),
            )
            self._cache_events_total = metrics.counter(
                "session_cache_events_total",
                "exact per-request cache/memo/program counter movement",
                labelnames=("event",),
            )
            self._evaluations_total = metrics.counter(
                "session_query_evaluations_total",
                "query evaluations by compiled-kernel vs interpreter fallback",
                labelnames=("mode",),
            )

    # -- introspection ---------------------------------------------------------

    @property
    def knowledge_base(self) -> KnowledgeBase:
        """The session's normalised knowledge base."""
        return self._kb

    @property
    def engine(self) -> RandomWorlds:
        """The bound random-worlds engine (the session's warm state)."""
        return self._engine

    @property
    def registry(self) -> SolverRegistry:
        """The solver registry requests dispatch through."""
        return self._registry

    @property
    def fingerprint(self) -> str:
        """The KB fingerprint computed once at open."""
        return self._fingerprint

    @property
    def analyze_mode(self) -> str:
        """The pre-flight analysis mode this session runs ("off"/"warn"/"strict")."""
        return self._analyze_mode

    @property
    def analysis(self) -> Optional["_analysis.AnalysisReport"]:
        """The KB's pre-flight report (``None`` when ``analyze="off"``)."""
        return self._analysis

    def cache_info(self) -> Optional[CacheInfo]:
        """Counter totals of the session's world-count cache."""
        return self._engine.cache_info()

    def solvers_for(self, request: RequestLike) -> Tuple[str, ...]:
        """The registry keys whose ``supports`` probe accepts the request."""
        return self._registry.supporting(self._as_request(request), self._kb)

    # -- the request path ------------------------------------------------------

    def _as_request(self, request: RequestLike) -> QueryRequest:
        if isinstance(request, QueryRequest):
            return request
        return QueryRequest(query=request)

    def _with_id(self, request: QueryRequest) -> QueryRequest:
        """Assign the next sequential request id unless the caller chose one.

        Ids are assigned before any fan-out so they follow request order even
        when a batch answers on a thread pool.
        """
        if request.request_id:
            return request
        return replace(request, request_id=f"q{next(self._request_ids)}")

    def engine_for(self, request: QueryRequest) -> RandomWorlds:
        """The engine answering this request: the base one, or a derived
        sibling sharing the session's cache and worker pool when the request
        overrides the tolerance ladder or domain-size schedule."""
        if request.tolerances is None and request.domain_sizes is None:
            return self._engine
        key = (request.tolerances, request.domain_sizes)
        with self._lock:
            derived = self._derived.get(key)
            if derived is None:
                tolerances = (
                    None
                    if request.tolerances is None
                    else [ToleranceVector.uniform(tau) for tau in request.tolerances]
                )
                derived = self._engine.derive(tolerances=tolerances, domain_sizes=request.domain_sizes)
                self._derived[key] = derived
                while len(self._derived) > DERIVED_ENGINE_LIMIT:
                    self._derived.popitem(last=False)
            else:
                self._derived.move_to_end(key)
            return derived

    def solver_state(self, solver_key: str, state_key: Any, build: Callable[[], Any]) -> Any:
        """Per-session memo for solver-owned warm state (built once per key).

        ``build`` runs *outside* the session lock: it is arbitrary solver
        code, and a build that re-enters the session (or takes long enough
        to matter) must not hold up — or deadlock on — the non-reentrant
        lock.  Concurrent first calls may therefore build twice; the first
        store wins and the duplicate is discarded, which is sound because
        solver state is a pure function of the KB and the key.
        """
        key = (solver_key, state_key)
        with self._lock:
            if key in self._state:
                return self._state[key]
        built = build()
        with self._lock:
            return self._state.setdefault(key, built)

    def _query_analysis(self, request: QueryRequest) -> Optional[List[Dict[str, Any]]]:
        """Per-query diagnostics for warn/strict sessions (``None`` when off).

        Static only (parse + symbol + compile pass — no enumeration).  In
        strict mode an error-level finding (bad syntax, undeclared symbol)
        refuses the query before any solver runs.
        """
        if self._analyze_mode == "off":
            return None
        findings = _analysis.query_diagnostics(self._kb, request.query)
        if self._analyze_mode == "strict":
            errors = [finding for finding in findings if finding.is_error]
            if errors:
                summary = "; ".join(f"{d.code} {d.message}" for d in errors)
                raise AnalysisError(
                    f"query rejected by pre-flight analysis: {summary}",
                    _analysis.AnalysisReport(diagnostics=tuple(findings)),
                )
        return [finding.to_dict() for finding in findings] or None

    def submit(self, request: RequestLike) -> BeliefResponse:
        """Answer one request through the solver its ``method`` key names.

        The response's ``cache_delta`` is attributed exactly: the solve runs
        under a per-request :class:`~repro.worlds.cache.CacheEventLog`
        (propagated onto worker threads when this one request fans grid
        points out), so concurrent ``submit`` calls never charge each other's
        cache traffic — the racy before/after ``cache_info()`` snapshot pair
        this replaces did.
        """
        request = self._with_id(self._as_request(request))
        analysis_notes = self._query_analysis(request)
        if analysis_notes:
            metadata = dict(request.metadata or {})
            metadata["analysis"] = analysis_notes
            request = replace(request, metadata=metadata)
        solver = self._registry.resolve(request.method)
        log = CacheEventLog()
        start = time.perf_counter()
        try:
            with tracking_cache_events(log):
                result = solver.solve(request, self)
        except Exception:
            self._observe(solver.key, "error", (time.perf_counter() - start) * 1000.0, log)
            raise
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self._observe(solver.key, "ok", elapsed_ms, log)
        delta = (
            CacheDelta(
                hits=log.hits,
                misses=log.misses,
                memo_hits=log.memo_hits,
                memo_misses=log.memo_misses,
            )
            if self._engine.world_cache is not None
            else None
        )
        return BeliefResponse(
            request_id=request.request_id,
            result=result,
            solver=solver.key,
            elapsed_ms=elapsed_ms,
            cache_delta=delta,
            metadata=request.metadata,
        )

    def _observe(self, solver_key: str, outcome: str, elapsed_ms: float, log: CacheEventLog) -> None:
        """Record one finished (or failed) submit into the metrics registry."""
        if self._metrics is None:
            return
        self._submit_latency.labels(solver=solver_key).observe(elapsed_ms)
        self._requests_total.labels(solver=solver_key, outcome=outcome).inc()
        for event in ("hits", "misses", "memo_hits", "memo_misses"):
            amount = getattr(log, event)
            if amount:
                self._cache_events_total.labels(event=event).inc(amount)
        if log.compiled:
            self._evaluations_total.labels(mode="compiled").inc(log.compiled)
        if log.fallback:
            self._evaluations_total.labels(mode="fallback").inc(log.fallback)

    def submit_many(
        self,
        requests: Sequence[RequestLike],
        max_workers: Optional[int] = None,
    ) -> List[BeliefResponse]:
        """Answer many requests, sharing all per-KB warm state.

        With the ``threads`` backend the requests fan out over a thread pool;
        with ``processes`` the request loop stays sequential and the counting
        layer shards across the engine's process pool; otherwise the loop is
        serial.  Passing ``max_workers > 1`` on an engine with no explicit
        backend raises ``ValueError`` (the old implicit-threads spelling was
        removed — configure ``EngineOptions(backend="threads")``).  Responses
        come back in request order.
        """
        items = [self._with_id(self._as_request(request)) for request in requests]
        engine = self._engine
        workers = max_workers if max_workers is not None else engine.max_workers
        supplied = isinstance(engine.backend, CountingExecutor)
        resolved = resolve_backend(engine.backend.name if supplied else engine.backend, workers)
        if resolved == "threads" and len(items) > 1:
            # A caller-supplied executor instance is used as-is (its pool and
            # width belong to the caller); a string spec builds a per-call
            # pool that executor_scope shuts down on exit.
            with executor_scope(engine.backend if supplied else "threads", workers) as executor:
                return executor.map_ordered(self.submit, items)
        return [self.submit(item) for item in items]

    def stream(
        self,
        requests: Iterable[RequestLike],
        *,
        on_error: str = "respond",
    ) -> Iterator[Union[BeliefResponse, ErrorResponse]]:
        """Lazily answer an iterable of requests on the warm session.

        With ``on_error="respond"`` (the default) a request whose evaluation
        raises a request-scoped error — unparseable query, unknown method,
        unsupported or unanswerable request (see :func:`error_code_for`) —
        yields an :class:`ErrorResponse` row carrying the request's id and
        metadata, and the remaining requests still answer in submission
        order; only failures not attributable to the request propagate.
        ``on_error="raise"`` propagates every failure immediately.
        """
        if on_error not in STREAM_ERROR_MODES:
            raise ValueError(f"on_error must be one of {STREAM_ERROR_MODES}, got {on_error!r}")
        for request in requests:
            request = self._with_id(self._as_request(request))
            start = time.perf_counter()
            try:
                yield self.submit(request)
            except Exception as error:
                code = error_code_for(error)
                if on_error != "respond" or code is None:
                    raise
                yield ErrorResponse(
                    request_id=request.request_id,
                    code=code,
                    message=str(error),
                    elapsed_ms=(time.perf_counter() - start) * 1000.0,
                    metadata=request.metadata,
                )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the engine's worker pool if the session owns the engine."""
        if self._owns_engine:
            self._engine.close()

    def __enter__(self) -> "BeliefSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"BeliefSession(kb={len(self._kb)} sentences, fingerprint={self._fingerprint!r}, "
            f"owns_engine={self._owns_engine})"
        )


def open_session(
    knowledge_base: KnowledgeBaseLike,
    *,
    engine: Optional[RandomWorlds] = None,
    registry: Optional[SolverRegistry] = None,
    consistency_check: bool = True,
    analyze: str = "off",
    metrics: Optional[MetricsRegistry] = None,
    **engine_options: Any,
) -> BeliefSession:
    """Open a :class:`BeliefSession` over a knowledge base.

    The KB is normalised, fingerprinted and consistency-checked here, once;
    every later request reuses the session's warm caches.  ``analyze="warn"``
    additionally runs the static pre-flight analyzer and attaches
    diagnostics (``analyze="strict"`` refuses error-level KBs with
    :class:`~repro.analysis.AnalysisError`).  Close the session (or use it
    as a context manager) to release an engine-owned worker pool.
    """
    return BeliefSession(
        knowledge_base,
        engine=engine,
        registry=registry,
        consistency_check=consistency_check,
        analyze=analyze,
        metrics=metrics,
        **engine_options,
    )
