"""The solver registry: every inference family behind one request path.

Layer contract: this module owns the mapping from method keys to inference
machinery — it adapts each family to the one ``solve(request, session) ->
BeliefResult`` shape, and holds no session state and no wire format of its
own.

A :class:`Solver` answers a :class:`~repro.service.messages.QueryRequest`
against a :class:`~repro.service.session.BeliefSession` and returns the same
:class:`~repro.core.result.BeliefResult` schema regardless of machinery.  The
registry maps string method keys (``"auto"``, ``"maxent"``,
``"reference-class:kyburg"``, ``"defaults:system-z"``, ...) to solvers and
offers a ``supports(request, kb)`` probe so a front-end can ask which
families apply to a query before dispatching it.

Registered families:

* ``random-worlds`` (alias ``auto``) and the per-path keys
  ``random-worlds:independence`` / ``:analytic`` / ``:maxent`` /
  ``:counting`` (aliased to their bare legacy names) — the
  :class:`~repro.core.engine.RandomWorlds` dispatch;
* ``reference-class:reichenbach`` / ``reference-class:kyburg`` — the
  single-reference-class baselines of Section 2;
* ``defaults:system-z`` / ``defaults:epsilon`` / ``defaults:maxent`` — the
  propositional default-reasoning baselines of Sections 3 and 6, applied to
  the statistical reading of the session KB's defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..core.knowledge_base import KnowledgeBase
from ..core.result import BeliefResult
from ..defaults.epsilon import p_entails
from ..defaults.propositional import NotPropositional
from ..defaults.rules import DefaultRule, RuleSet
from ..defaults.system_z import z_ranking
from ..logic.substitution import constants_of
from ..logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TRUE,
    Top,
    Var,
    conj,
)
from ..reference_class.classes import NoReferenceClass, extract_problem
from ..reference_class.kyburg import KyburgReasoner
from ..reference_class.reichenbach import ReferenceClassAnswer, ReichenbachReasoner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .messages import QueryRequest
    from .session import BeliefSession


class UnsupportedRequest(ValueError):
    """Raised when a solver cannot interpret the request/KB combination."""


@dataclass(frozen=True)
class Solver:
    """One registered inference family.

    ``solve(request, session)`` produces the result; ``supports(request,
    kb)`` is a cheap applicability probe (it must not mutate warm state and
    should err on the side of ``True`` when applicability is only decidable
    by running the solver).
    """

    key: str
    solve: Callable[["QueryRequest", "BeliefSession"], BeliefResult]
    supports: Callable[["QueryRequest", KnowledgeBase], bool]
    description: str = ""
    aliases: Tuple[str, ...] = ()


class SolverRegistry:
    """String-keyed solver lookup shared by every session."""

    def __init__(self) -> None:
        self._solvers: Dict[str, Solver] = {}
        self._aliases: Dict[str, str] = {}

    def register(self, solver: Solver) -> Solver:
        """Register a solver under its key and aliases (either may not clash)."""
        for name in (solver.key, *solver.aliases):
            if name in self._solvers or name in self._aliases:
                raise ValueError(f"solver key {name!r} is already registered")
        self._solvers[solver.key] = solver
        for alias in solver.aliases:
            self._aliases[alias] = solver.key
        return solver

    def resolve(self, method: str) -> Solver:
        """The solver for a method key or alias; ``ValueError`` on unknown keys."""
        key = self._aliases.get(method, method)
        solver = self._solvers.get(key)
        if solver is None:
            known = ", ".join(sorted((*self._solvers, *self._aliases)))
            raise ValueError(f"unknown method {method!r}; expected one of: {known}")
        return solver

    def keys(self) -> Tuple[str, ...]:
        """The canonical solver keys, sorted."""
        return tuple(sorted(self._solvers))

    def supporting(self, request: "QueryRequest", knowledge_base: KnowledgeBase) -> Tuple[str, ...]:
        """The keys of every solver whose probe accepts the request."""
        return tuple(
            key for key, solver in sorted(self._solvers.items()) if solver.supports(request, knowledge_base)
        )

    def __contains__(self, method: str) -> bool:
        return method in self._solvers or method in self._aliases

    def __iter__(self):
        return iter(self._solvers.values())


# ---------------------------------------------------------------------------
# Random-worlds solvers (the engine dispatch behind string keys)
# ---------------------------------------------------------------------------


def _engine_solver(method: str) -> Callable[["QueryRequest", "BeliefSession"], BeliefResult]:
    def solve(request: "QueryRequest", session: "BeliefSession") -> BeliefResult:
        engine = session.engine_for(request)
        return engine.dispatch(request.formula, session.knowledge_base, method=method)

    return solve


def _maxent_supports(request: "QueryRequest", knowledge_base: KnowledgeBase) -> bool:
    from ..logic.vocabulary import Vocabulary

    vocabulary = knowledge_base.vocabulary.merge(Vocabulary.from_formulas([request.formula]))
    return vocabulary.is_unary


def _always(request: "QueryRequest", knowledge_base: KnowledgeBase) -> bool:
    return True


# ---------------------------------------------------------------------------
# Reference-class solvers
# ---------------------------------------------------------------------------


def _reference_answer_result(answer: ReferenceClassAnswer, key: str) -> BeliefResult:
    return BeliefResult(
        value=answer.value,
        interval=answer.interval,
        exists=True,
        method=key,
        diagnostics={
            "vacuous": answer.vacuous,
            "chosen_class": repr(answer.chosen_class) if answer.chosen_class is not None else None,
        },
        note=answer.note,
    )


def _reference_class_solver(key: str, reasoner) -> Callable[["QueryRequest", "BeliefSession"], BeliefResult]:
    def solve(request: "QueryRequest", session: "BeliefSession") -> BeliefResult:
        answer = reasoner.answer(request.formula, session.knowledge_base)
        return _reference_answer_result(answer, key)

    return solve


def _reference_class_supports(request: "QueryRequest", knowledge_base: KnowledgeBase) -> bool:
    try:
        extract_problem(request.formula, knowledge_base)
    except NoReferenceClass:
        return False
    return True


# ---------------------------------------------------------------------------
# Default-reasoning solvers (the statistical reading of the KB's defaults)
# ---------------------------------------------------------------------------


def _propositional(formula: Formula, subject) -> Formula:
    """Rewrite a one-subject unary formula as a propositional one.

    ``subject`` is the variable name (for statistics ``%(... | ...; x)``) or
    the :class:`Const` (for ground facts) every atom must be about; the atom's
    predicate becomes a propositional variable.
    """
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Atom):
        if len(formula.args) != 1:
            raise NotPropositional(f"{formula!r} is not unary")
        argument = formula.args[0]
        if isinstance(subject, Const):
            matches = argument == subject
        else:
            matches = isinstance(argument, Var) and argument.name == subject
        if not matches:
            raise NotPropositional(f"{formula!r} is not about {subject!r}")
        return Atom(formula.predicate, ())
    if isinstance(formula, Not):
        return Not(_propositional(formula.operand, subject))
    if isinstance(formula, And):
        return And(tuple(_propositional(operand, subject) for operand in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(_propositional(operand, subject) for operand in formula.operands))
    if isinstance(formula, Implies):
        return Implies(_propositional(formula.antecedent, subject), _propositional(formula.consequent, subject))
    if isinstance(formula, Iff):
        return Iff(_propositional(formula.left, subject), _propositional(formula.right, subject))
    raise NotPropositional(f"{formula!r} is outside the propositional default fragment")


@dataclass(frozen=True)
class DefaultProblem:
    """A session KB and query translated into the propositional default setting.

    The KB's defaults (statistics with value ≈ 1 or ≈ 0 over one variable)
    become default rules; its universally quantified conjuncts become hard
    constraints; the ground facts about the query's constant become the query
    rule's antecedent (its context).
    """

    rule_set: RuleSet
    query_rule: DefaultRule
    constant: str
    rule_labels: Tuple[str, ...] = field(default_factory=tuple)


def _kb_rule_set(knowledge_base: KnowledgeBase) -> Tuple[RuleSet, Tuple[str, ...]]:
    """The KB-only half of the translation: rules plus hard constraints.

    A pure function of the (immutable) KB, so sessions memoise it.
    """
    rules: List[DefaultRule] = []
    labels: List[str] = []
    try:
        for statistic in knowledge_base.statistics():
            if not statistic.is_default:
                raise UnsupportedRequest(
                    f"statistic {statistic.source!r} is not a default (value must be ~= 0 or ~= 1)"
                )
            if len(statistic.variables) != 1:
                raise UnsupportedRequest(f"default {statistic.source!r} quantifies over several variables")
            variable = statistic.variables[0]
            antecedent = _propositional(statistic.condition, variable)
            consequent = _propositional(statistic.formula, variable)
            if abs(statistic.value) < 1e-12:
                consequent = Not(consequent)
            label = repr(statistic.source)
            rules.append(DefaultRule(antecedent, consequent, label=label))
            labels.append(label)
        if not rules:
            raise UnsupportedRequest("the knowledge base asserts no defaults")

        hard: List[Formula] = []
        for universal in knowledge_base.universal_conjuncts():
            if not isinstance(universal, Forall) or isinstance(universal.body, Forall):
                raise UnsupportedRequest(f"{universal!r} is outside the propositional default fragment")
            hard.append(_propositional(universal.body, universal.variable))
    except NotPropositional as error:
        raise UnsupportedRequest(str(error)) from error
    return RuleSet(rules, hard), tuple(labels)


def _query_rule(query: Formula, knowledge_base: KnowledgeBase) -> Tuple[DefaultRule, str]:
    """The query half: the grounded context and consequent as a query rule."""
    constants = sorted(constants_of(query))
    if len(constants) != 1:
        raise UnsupportedRequest(
            f"default-reasoning queries are ground sentences about one constant; {query!r} mentions {constants}"
        )
    constant = constants[0]
    try:
        consequent = _propositional(query, Const(constant))
        context_parts = [
            _propositional(fact, Const(constant)) for fact in knowledge_base.facts_about(constant)
        ]
    except NotPropositional as error:
        raise UnsupportedRequest(str(error)) from error
    context = conj(*context_parts) if context_parts else TRUE
    return DefaultRule(context, consequent, label=repr(query)), constant


def extract_default_problem(query: Formula, knowledge_base: KnowledgeBase) -> DefaultProblem:
    """Translate (query, KB) into a rule set plus query rule, or raise.

    Raises :class:`UnsupportedRequest` when the KB has no defaults, carries
    statistics outside the default fragment, or the query is not a ground
    unary sentence about exactly one constant.
    """
    rule_set, labels = _kb_rule_set(knowledge_base)
    query_rule, constant = _query_rule(query, knowledge_base)
    return DefaultProblem(rule_set=rule_set, query_rule=query_rule, constant=constant, rule_labels=labels)


def _session_problem(request: "QueryRequest", session: "BeliefSession") -> DefaultProblem:
    """Like :func:`extract_default_problem`, with the KB half memoised per session."""
    rule_set, labels = session.solver_state(
        "defaults", "rule-set", lambda: _kb_rule_set(session.knowledge_base)
    )
    query_rule, constant = _query_rule(request.formula, session.knowledge_base)
    return DefaultProblem(rule_set=rule_set, query_rule=query_rule, constant=constant, rule_labels=labels)


def _defaults_supports(request: "QueryRequest", knowledge_base: KnowledgeBase) -> bool:
    try:
        extract_default_problem(request.formula, knowledge_base)
    except UnsupportedRequest:
        return False
    return True


def _entailment_result(
    key: str,
    problem: DefaultProblem,
    entails_query: bool,
    entails_negation: bool,
    note: str,
    diagnostics: Optional[dict] = None,
) -> BeliefResult:
    if entails_query and entails_negation:
        # An unsatisfiable context vacuously entails everything; serving 1.0
        # for both a query and its negation would be incoherent.
        value: Optional[float] = None
        note = f"{note}; the query context is unsatisfiable (it entails every conclusion)"
    elif entails_query:
        value = 1.0
    elif entails_negation:
        value = 0.0
    else:
        value = None
        note = f"{note}; the query is undecided"
    payload = {
        "rules": list(problem.rule_labels),
        "context": repr(problem.query_rule.antecedent),
        "constant": problem.constant,
        "entails_query": entails_query,
        "entails_negation": entails_negation,
    }
    if diagnostics:
        payload.update(diagnostics)
    return BeliefResult(
        value=value,
        interval=None if value is None else (value, value),
        exists=True,
        method=key,
        diagnostics=payload,
        note=note,
    )


def _system_z_solve(request: "QueryRequest", session: "BeliefSession") -> BeliefResult:
    problem = _session_problem(request, session)
    # The ranking is a pure function of the session KB's rule set.
    ranking = session.solver_state("defaults:system-z", "ranking", lambda: z_ranking(problem.rule_set))
    entails_query = ranking.entails(problem.query_rule.antecedent, problem.query_rule.consequent)
    entails_negation = ranking.entails(problem.query_rule.antecedent, Not(problem.query_rule.consequent))
    ranks = {rule.label or repr(rule): rank for rule, rank in ranking.rule_ranks.items()}
    return _entailment_result(
        "defaults:system-z",
        problem,
        entails_query,
        entails_negation,
        "System-Z entailment over the KB's defaults",
        diagnostics={"rule_ranks": ranks},
    )


def _epsilon_solve(request: "QueryRequest", session: "BeliefSession") -> BeliefResult:
    problem = _session_problem(request, session)
    query_rule = problem.query_rule
    entails_query = p_entails(problem.rule_set, query_rule)
    entails_negation = p_entails(
        problem.rule_set, DefaultRule(query_rule.antecedent, Not(query_rule.consequent))
    )
    return _entailment_result(
        "defaults:epsilon",
        problem,
        entails_query,
        entails_negation,
        "epsilon-semantics (p-entailment) over the KB's defaults",
    )


def _maxent_defaults_solve(request: "QueryRequest", session: "BeliefSession") -> BeliefResult:
    from ..defaults.maxent_defaults import MaxEntDefaultReasoner

    problem = _session_problem(request, session)

    def build() -> MaxEntDefaultReasoner:
        return MaxEntDefaultReasoner(problem.rule_set)

    # The rule set is a pure function of the session's (immutable) KB, so one
    # reasoner per session suffices — a constant state key makes the memo hit.
    reasoner: MaxEntDefaultReasoner = session.solver_state("defaults:maxent", "reasoner", build)
    inner = reasoner.degree_of_belief(problem.query_rule)
    return BeliefResult(
        value=inner.value,
        interval=inner.interval,
        exists=inner.exists,
        method="defaults:maxent",
        diagnostics={"rules": list(problem.rule_labels), "inner_method": inner.method, **inner.diagnostics},
        note=inner.note or "GMP90 maximum-entropy defaults through the Theorem 6.1 embedding",
    )


# ---------------------------------------------------------------------------
# The default registry
# ---------------------------------------------------------------------------


def build_default_registry() -> SolverRegistry:
    """A registry with every built-in inference family registered."""
    registry = SolverRegistry()
    registry.register(
        Solver(
            key="random-worlds",
            solve=_engine_solver("auto"),
            supports=_always,
            description="random-worlds auto-dispatch: independence, analytic theorems, maxent, counting",
            aliases=("auto",),
        )
    )
    for path, probe in (
        ("independence", _always),
        ("analytic", _always),
        ("maxent", _maxent_supports),
        ("counting", _always),
    ):
        registry.register(
            Solver(
                key=f"random-worlds:{path}",
                solve=_engine_solver(path),
                supports=probe,
                description=f"random-worlds forced through its {path} path",
                aliases=(path,),
            )
        )
    registry.register(
        Solver(
            key="reference-class:reichenbach",
            solve=_reference_class_solver("reference-class:reichenbach", ReichenbachReasoner()),
            supports=_reference_class_supports,
            description="narrowest single reference class (Section 2.1)",
        )
    )
    registry.register(
        Solver(
            key="reference-class:kyburg",
            solve=_reference_class_solver("reference-class:kyburg", KyburgReasoner()),
            supports=_reference_class_supports,
            description="specificity plus the strength rule (Section 2.3)",
        )
    )
    registry.register(
        Solver(
            key="defaults:system-z",
            solve=_system_z_solve,
            supports=_defaults_supports,
            description="System-Z ranking over the statistical reading of the KB's defaults",
        )
    )
    registry.register(
        Solver(
            key="defaults:epsilon",
            solve=_epsilon_solve,
            supports=_defaults_supports,
            description="epsilon-semantics p-entailment over the KB's defaults",
        )
    )
    registry.register(
        Solver(
            key="defaults:maxent",
            solve=_maxent_defaults_solve,
            supports=_defaults_supports,
            description="GMP90 maximum-entropy defaults (Theorem 6.1 embedding)",
        )
    )
    return registry


_default_registry: Optional[SolverRegistry] = None


def default_registry() -> SolverRegistry:
    """The process-wide shared registry (built on first use)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = build_default_registry()
    return _default_registry
