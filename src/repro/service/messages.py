"""The serializable request/response surface of the belief service.

Layer contract: this module owns the wire-facing data shapes and their
lossless JSON codec, and nothing else — no dispatch (``registry``), no
session state (``session``), no inference.  Everything the HTTP layer
serves is exactly what these dataclasses ``to_dict()`` to.

Every inference family — random worlds with its auto-dispatch, maximum
entropy, the reference-class baselines, the default-reasoning systems —
answers through the same pair of frozen dataclasses: a :class:`QueryRequest`
goes into :meth:`BeliefSession.submit`, a :class:`BeliefResponse` comes back.
Both round-trip losslessly through ``to_dict()`` / ``from_dict()`` so a
service front-end can speak JSON while the in-process API keeps exact values:
``Fraction`` diagnostics, tuples, non-finite floats and non-string dictionary
keys all survive the trip (see :func:`encode_value` for the tagged encoding).

Payload values outside the encodable set degrade to :class:`Opaque` wrappers
carrying their ``repr`` — deterministic and stable under repeated round
trips, but no longer the original object.  Formulas are encoded by their
textual form and re-parsed on decode, which is lossless for the ordinary
query fragment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..core.result import BeliefResult
from ..logic.parser import ParseError, parse
from ..logic.syntax import Formula

SCHEMA_VERSION = 1

_FRACTION = "__fraction__"
_TUPLE = "__tuple__"
_FLOAT = "__float__"
_FORMULA = "__formula__"
_OPAQUE = "__opaque__"
_ITEMS = "__items__"


@dataclass(frozen=True)
class Opaque:
    """A payload value that could not be encoded structurally.

    Holds the ``repr`` of the original object; decoding an opaque payload
    yields the wrapper itself, so a second round trip is the identity.
    """

    text: str


def encode_value(value: Any) -> Any:
    """Encode a diagnostics payload value into JSON-compatible primitives.

    Handles ``None``/bool/int/str natively, floats with tagged non-finite
    values, ``Fraction`` (exact numerator/denominator), tuples, lists,
    dictionaries (string-keyed ones stay dictionaries; others become tagged
    item lists), formulas (textual form) and :class:`Opaque` wrappers.  Any
    other object becomes ``Opaque(repr(value))``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {_FLOAT: repr(value)}
    if isinstance(value, Fraction):
        return {_FRACTION: [value.numerator, value.denominator]}
    if isinstance(value, tuple):
        return {_TUPLE: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, Mapping):
        if all(isinstance(key, str) and not key.startswith("__") for key in value):
            return {key: encode_value(item) for key, item in value.items()}
        return {_ITEMS: [[encode_value(key), encode_value(item)] for key, item in value.items()]}
    if isinstance(value, Formula):
        return {_FORMULA: repr(value)}
    if isinstance(value, Opaque):
        return {_OPAQUE: value.text}
    return {_OPAQUE: repr(value)}


def decode_value(payload: Any) -> Any:
    """Invert :func:`encode_value`."""
    if payload is None or isinstance(payload, (bool, int, str, float)):
        return payload
    if isinstance(payload, list):
        return [decode_value(item) for item in payload]
    if isinstance(payload, Mapping):
        if _FLOAT in payload:
            return float(payload[_FLOAT])
        if _FRACTION in payload:
            numerator, denominator = payload[_FRACTION]
            return Fraction(int(numerator), int(denominator))
        if _TUPLE in payload:
            return tuple(decode_value(item) for item in payload[_TUPLE])
        if _FORMULA in payload:
            try:
                return parse(payload[_FORMULA])
            except ParseError:
                return Opaque(payload[_FORMULA])
        if _OPAQUE in payload:
            return Opaque(payload[_OPAQUE])
        if _ITEMS in payload:
            return {decode_value(key): decode_value(item) for key, item in payload[_ITEMS]}
        return {key: decode_value(item) for key, item in payload.items()}
    raise ValueError(f"cannot decode payload of type {type(payload).__name__}: {payload!r}")


def result_to_dict(result: BeliefResult) -> Dict[str, Any]:
    """Serialize a :class:`BeliefResult` (shared by responses and the wire format)."""
    return {
        "value": encode_value(result.value),
        "interval": encode_value(result.interval),
        "exists": result.exists,
        "method": result.method,
        "diagnostics": encode_value(result.diagnostics),
        "note": result.note,
    }


def result_from_dict(payload: Mapping[str, Any]) -> BeliefResult:
    """Rebuild a :class:`BeliefResult` serialized by :func:`result_to_dict`."""
    return BeliefResult(
        value=decode_value(payload["value"]),
        interval=decode_value(payload["interval"]),
        exists=payload["exists"],
        method=payload["method"],
        diagnostics=decode_value(payload["diagnostics"]),
        note=payload["note"],
    )


@dataclass(frozen=True)
class QueryRequest:
    """One query against a session's knowledge base.

    Attributes
    ----------
    query:
        The closed query sentence, as text or a parsed formula.  Text is kept
        verbatim (and parsed lazily), so serialization is exact.
    method:
        A solver-registry key (``"auto"``, ``"maxent"``,
        ``"reference-class:kyburg"``, ``"defaults:system-z"``, ...).  See
        :meth:`repro.service.SolverRegistry.keys`.
    request_id:
        Caller-chosen correlation id, echoed on the response.  Empty means
        the session assigns a sequential one.
    tolerances:
        Optional per-request override of the engine's shrinking tolerance
        ladder, as the ``default`` value of each uniform tolerance vector.
    domain_sizes:
        Optional per-request override of the counting engine's domain-size
        schedule.
    metadata:
        Free-form caller payload, echoed on the response.
    """

    query: Union[str, Formula]
    method: str = "auto"
    request_id: str = ""
    tolerances: Optional[Tuple[float, ...]] = None
    domain_sizes: Optional[Tuple[int, ...]] = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tolerances is not None:
            object.__setattr__(self, "tolerances", tuple(float(t) for t in self.tolerances))
        if self.domain_sizes is not None:
            object.__setattr__(self, "domain_sizes", tuple(int(n) for n in self.domain_sizes))
        object.__setattr__(self, "metadata", dict(self.metadata))

    @property
    def formula(self) -> Formula:
        """The parsed query sentence."""
        return parse(self.query) if isinstance(self.query, str) else self.query

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "query": self.query if isinstance(self.query, str) else encode_value(self.query),
            "method": self.method,
            "request_id": self.request_id,
            "tolerances": encode_value(self.tolerances),
            "domain_sizes": encode_value(self.domain_sizes),
            "metadata": encode_value(dict(self.metadata)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        return cls(
            query=decode_value(payload["query"]),
            method=payload.get("method", "auto"),
            request_id=payload.get("request_id", ""),
            tolerances=decode_value(payload.get("tolerances")),
            domain_sizes=decode_value(payload.get("domain_sizes")),
            metadata=decode_value(payload.get("metadata") or {}),
        )


@dataclass(frozen=True)
class CacheDelta:
    """World-count cache / query-memo counter movement caused by one request.

    Attribution is exact: the session installs a per-request
    :class:`~repro.worlds.cache.CacheEventLog` around each solve (propagated
    onto worker threads when one request fans grid points out), so a request
    is charged precisely the events its own evaluation caused even under
    concurrent ``submit`` calls.  :meth:`between` remains for comparing two
    :class:`~repro.worlds.cache.CacheInfo` snapshots taken by the caller.
    """

    hits: int = 0
    misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0

    @classmethod
    def between(cls, before, after) -> "CacheDelta":
        """The counter movement between two :class:`CacheInfo` snapshots."""
        return cls(
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            memo_hits=after.memo_hits - before.memo_hits,
            memo_misses=after.memo_misses - before.memo_misses,
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "CacheDelta":
        return cls(**{key: int(payload[key]) for key in ("hits", "misses", "memo_hits", "memo_misses")})


@dataclass(frozen=True)
class BeliefResponse:
    """The answer to one :class:`QueryRequest`.

    Wraps the :class:`BeliefResult` with its provenance: the solver-registry
    key that produced it, wall-clock timing, the cache/memo counter delta the
    request caused, and the request's correlation id and metadata.
    """

    request_id: str
    result: BeliefResult
    solver: str
    elapsed_ms: float
    cache_delta: Optional[CacheDelta] = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "metadata", dict(self.metadata))

    @property
    def value(self) -> Optional[float]:
        """Shortcut to ``result.value``."""
        return self.result.value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "request_id": self.request_id,
            "solver": self.solver,
            "elapsed_ms": self.elapsed_ms,
            "result": result_to_dict(self.result),
            "cache_delta": self.cache_delta.to_dict() if self.cache_delta is not None else None,
            "metadata": encode_value(dict(self.metadata)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BeliefResponse":
        delta = payload.get("cache_delta")
        return cls(
            request_id=payload["request_id"],
            result=result_from_dict(payload["result"]),
            solver=payload["solver"],
            elapsed_ms=payload["elapsed_ms"],
            cache_delta=CacheDelta.from_dict(delta) if delta is not None else None,
            metadata=decode_value(payload.get("metadata") or {}),
        )


@dataclass(frozen=True)
class ErrorResponse:
    """A per-request failure inside a streamed batch.

    ``BeliefSession.stream`` (and the HTTP ``/stream`` route) answers a
    request whose evaluation failed with one of these instead of tearing
    down the whole iterator: the remaining requests still complete in
    submission order.  ``code`` uses the same vocabulary as the HTTP error
    model (``bad-request``, ``query-failed``, ``unsupported-request``,
    ``analysis-failed``, ``inconsistent-kb`` — see docs/DEPLOYMENT.md), so
    a streamed error row and a non-streamed HTTP error describe the same
    failure with the same words.
    """

    request_id: str
    code: str
    message: str
    elapsed_ms: float = 0.0
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "metadata", dict(self.metadata))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "request_id": self.request_id,
            "error": {"code": self.code, "message": self.message},
            "elapsed_ms": self.elapsed_ms,
            "metadata": encode_value(dict(self.metadata)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ErrorResponse":
        error = payload.get("error") or {}
        return cls(
            request_id=payload.get("request_id", ""),
            code=error.get("code", "error"),
            message=error.get("message", ""),
            elapsed_ms=payload.get("elapsed_ms", 0.0),
            metadata=decode_value(payload.get("metadata") or {}),
        )


def response_from_dict(payload: Mapping[str, Any]) -> Union[BeliefResponse, ErrorResponse]:
    """Rebuild whichever response row ``payload`` serializes.

    Streamed NDJSON rows interleave :class:`BeliefResponse` and
    :class:`ErrorResponse` objects; the ``"error"`` key discriminates.
    """
    if "error" in payload:
        return ErrorResponse.from_dict(payload)
    return BeliefResponse.from_dict(payload)
