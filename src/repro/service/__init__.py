"""The belief service: one session-oriented API over every inference family.

Layer contract: ``repro.service`` is the canonical public surface between
callers and the inference machinery — it owns request/response schemas,
solver dispatch and per-KB session state, while the layers below
(``repro.core``, ``repro.worlds``, ...) own the mathematics and the layer
above (``repro.server``) owns HTTP framing and serving policy.

``open_session(kb)`` normalises, fingerprints and consistency-checks a
knowledge base once and binds it to a warm engine stack; ``submit`` /
``submit_many`` / ``stream`` then answer :class:`QueryRequest` objects —
random-worlds, maximum-entropy, reference-class and default-reasoning
requests alike — with :class:`BeliefResponse` objects that serialize
losslessly to JSON.  See ``docs/API.md`` for the schema and solver keys,
and ``docs/DEPLOYMENT.md`` for the served form.
"""

from .messages import (
    SCHEMA_VERSION,
    BeliefResponse,
    CacheDelta,
    ErrorResponse,
    Opaque,
    QueryRequest,
    decode_value,
    encode_value,
    response_from_dict,
    result_from_dict,
    result_to_dict,
)
from .registry import (
    DefaultProblem,
    Solver,
    SolverRegistry,
    UnsupportedRequest,
    build_default_registry,
    default_registry,
    extract_default_problem,
)
from .session import BeliefSession, check_consistency, kb_fingerprint, open_session

__all__ = [
    "SCHEMA_VERSION",
    "BeliefResponse",
    "BeliefSession",
    "CacheDelta",
    "DefaultProblem",
    "ErrorResponse",
    "Opaque",
    "QueryRequest",
    "Solver",
    "SolverRegistry",
    "UnsupportedRequest",
    "build_default_registry",
    "check_consistency",
    "decode_value",
    "default_registry",
    "encode_value",
    "extract_default_problem",
    "kb_fingerprint",
    "open_session",
    "response_from_dict",
    "result_from_dict",
    "result_to_dict",
]
