"""The ``repro-serve`` console entry point.

Layer contract: flag parsing and process lifecycle only — every flag maps
onto a :class:`~repro.server.manager.SessionManager` or
:class:`~repro.server.app.BeliefHTTPServer` constructor argument, so the CLI
adds no behaviour of its own.  The engine flags (``--backend``,
``--max-workers``, ``--memo-size``, ``--no-memo``, ``--no-compile``,
``--domain-sizes``, ``--tolerances``) are generated from the
:class:`~repro.core.options.EngineOptions` field metadata, so the command
line cannot drift from the engine signature.  ``docs/DEPLOYMENT.md``
documents the knobs; the docs-freshness suite validates its examples against
this parser.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..core.options import add_engine_cli_arguments, engine_options_from_args
from .app import DEFAULT_REQUEST_TIMEOUT, make_server
from .manager import SessionManager


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for the docs checks)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve degrees of belief over HTTP: a session-per-KB front-end "
        "with LRU+TTL eviction and explicit 429 backpressure.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8080, help="bind port; 0 picks an ephemeral one")
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="LRU capacity: most sessions kept warm at once (default: %(default)s)",
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="idle TTL per session; 0 disables expiry (default: %(default)s)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="admission bound: concurrent requests beyond this get 429 (default: %(default)s)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint sent with 429 responses (default: %(default)s)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=DEFAULT_REQUEST_TIMEOUT,
        metavar="SECONDS",
        help="per-connection socket timeout: a request body that stalls longer than "
        "this answers 400 instead of parking the thread (default: %(default)s)",
    )
    parser.add_argument(
        "--analyze",
        choices=("off", "warn", "strict"),
        default="off",
        help="pre-flight analysis mode for new sessions: 'warn' attaches per-query "
        "diagnostics to response metadata, 'strict' refuses KBs with error-level "
        "diagnostics (422); per-open payloads may override (default: %(default)s)",
    )
    add_engine_cli_arguments(parser)
    parser.add_argument("--verbose", action="store_true", help="log one line per HTTP request")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        engine_options = engine_options_from_args(args)
    except ValueError as error:
        parser.error(str(error))
    manager = SessionManager(
        max_sessions=args.max_sessions,
        ttl_seconds=args.ttl if args.ttl > 0 else None,
        max_inflight=args.max_inflight,
        retry_after=args.retry_after,
        analyze=args.analyze,
        **engine_options,
    )
    server = make_server(
        args.host, args.port, manager, verbose=args.verbose, request_timeout=args.request_timeout
    )
    print(
        f"repro-serve listening on {server.url}  "
        "(POST /v1/sessions to begin; GET /healthz; GET /metrics)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        manager.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
