"""Session lifecycle policy for the HTTP front-end.

Layer contract: this module owns *which sessions exist and who may use them*
— nothing about HTTP framing (that is :mod:`repro.server.app`) and nothing
about inference (that is :mod:`repro.service`).  A :class:`SessionManager`
maps KB fingerprints to live :class:`~repro.service.session.BeliefSession`
objects and enforces the three serving policies the ROADMAP's network
front-end item called for:

* **routing** — ``open()`` is idempotent on the KB fingerprint: opening the
  same knowledge base twice returns the same session id and the same warm
  session, so any number of clients (or load-balanced replicas) converge on
  one engine stack per KB;
* **eviction** — sessions are kept in an LRU of at most ``max_sessions``
  entries, each with an optional idle TTL.  Eviction never interrupts work:
  a session is only closed when its last lease is released, and its
  world-count cache is retained (bounded, keyed by fingerprint) so an
  idempotent re-open after eviction starts with a warm cache;
* **backpressure** — ``admit()`` bounds the number of in-flight requests at
  ``max_inflight`` and raises :class:`Overloaded` (HTTP 429 upstream) instead
  of queueing unboundedly.

Everything here is plain threading + stdlib; the manager is safe to share
across the threads of a ``ThreadingHTTPServer``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from ..core.engine import RandomWorlds
from ..core.knowledge_base import KnowledgeBase
from ..core.options import EngineOptions
from ..obs import MetricsRegistry
from ..service.registry import SolverRegistry
from ..service.session import ANALYZE_MODES, BeliefSession, KnowledgeBaseLike, kb_fingerprint
from ..statics.runtime import named_lock
from ..worlds.cache import WorldCountCache

# Engine options a network caller may set per open request — derived from the
# EngineOptions field metadata (``wire=True``), so the whitelist cannot drift
# from the engine signature.  Still a whitelist, not constructor
# introspection: the wire must not reach arbitrary parameters (``cache=`` in
# particular is owned by the manager's warm-cache retention).
WIRE_ENGINE_OPTIONS = frozenset(EngineOptions.wire_option_names())


class Overloaded(RuntimeError):
    """Raised by :meth:`SessionManager.admit` when ``max_inflight`` is reached.

    Carries ``retry_after`` (seconds) so the HTTP layer can answer 429 with a
    concrete ``Retry-After`` header instead of letting requests queue.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class UnknownSession(KeyError):
    """No live session under the requested id (HTTP 404 upstream)."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class ExpiredSession(UnknownSession):
    """The session existed but its idle TTL elapsed; re-open to continue."""


def normalise_engine_options(
    options: Union[EngineOptions, Dict[str, Any], None],
) -> Dict[str, Any]:
    """Coerce wire-shaped engine options into :class:`RandomWorlds` kwargs.

    JSON carries lists and bare numbers; every per-key coercion is delegated
    to :meth:`EngineOptions.coerce_field`, the same validation the engine
    constructor runs, so the wire cannot accept a value the engine rejects.
    Unknown keys raise ``ValueError`` so a typo in a client payload is a 400,
    not a silently ignored knob.  A partial payload stays partial (server
    defaults still apply); cross-field rules are enforced once the merged
    combination reaches ``RandomWorlds``.  Passing an :class:`EngineOptions`
    instance is a *full* specification: every field is taken, defaults
    included.  Idempotent, so layered callers may each normalise.
    """
    if not options:
        return {}
    if isinstance(options, EngineOptions):
        return options.to_field_dict()
    unknown = sorted(set(options) - WIRE_ENGINE_OPTIONS)
    if unknown:
        raise ValueError(
            f"unknown engine option(s) {', '.join(map(repr, unknown))}; "
            f"expected a subset of {sorted(WIRE_ENGINE_OPTIONS)}"
        )
    return {
        key: EngineOptions.coerce_field(key, value)
        for key, value in options.items()
        if value is not None
    }


class ManagedSession:
    """One live session plus the bookkeeping the eviction policy needs.

    ``leases`` counts in-flight requests holding the session; ``defunct``
    marks an entry evicted (LRU or TTL) while leased — the underlying
    session closes when the last lease is released, never mid-query.
    """

    __slots__ = ("session", "session_id", "created_at", "last_used_at", "leases", "defunct")

    def __init__(self, session: BeliefSession, session_id: str, now: float) -> None:
        self.session = session
        self.session_id = session_id
        self.created_at = now
        self.last_used_at = now
        self.leases = 0
        self.defunct = False


class SessionManager:
    """Fingerprint-keyed sessions with LRU+TTL eviction and bounded admission.

    Parameters
    ----------
    max_sessions:
        LRU capacity; opening session ``max_sessions + 1`` evicts the least
        recently used one (retaining its world-count cache).
    ttl_seconds:
        Idle time after which a session expires (checked lazily on access and
        swept on every open).  ``None`` disables the TTL.
    max_inflight:
        Admission bound: concurrent ``admit()`` holders beyond this raise
        :class:`Overloaded`.
    retry_after:
        The ``Retry-After`` hint (seconds) attached to overload rejections.
    clock:
        Monotonic time source (injectable for tests).
    consistency_check:
        Passed to :func:`~repro.service.session.open_session` for new
        sessions (per-open payloads may override it).
    analyze:
        Default pre-flight analysis mode (``"off"``/``"warn"``/``"strict"``)
        for new sessions; per-open payloads may override it.  ``"strict"``
        makes the manager refuse to build a session over a KB with
        error-level diagnostics (HTTP 422 upstream).
    metrics:
        The :class:`~repro.obs.MetricsRegistry` the manager (and every
        session it builds, and the HTTP layer above) instruments against.
        ``None`` (the default) creates a private registry, so ``/metrics``
        always has something to serve.
    solver_registry:
        Solver registry for new sessions (``None`` uses the shared default);
        injectable so tests can serve custom solvers over HTTP.
    engine_options:
        Default :class:`RandomWorlds` options for new sessions; per-open
        options override them key by key.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        ttl_seconds: Optional[float] = None,
        max_inflight: int = 32,
        retry_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        consistency_check: bool = True,
        analyze: str = "off",
        metrics: Optional[MetricsRegistry] = None,
        solver_registry: Optional[SolverRegistry] = None,
        **engine_options: Any,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if analyze not in ANALYZE_MODES:
            raise ValueError(f"analyze must be one of {ANALYZE_MODES}, got {analyze!r}")
        self._max_sessions = max_sessions
        self._ttl = ttl_seconds
        self._max_inflight = max_inflight
        self._retry_after = retry_after
        self._clock = clock
        self._consistency_check = consistency_check
        self._analyze = analyze
        self._engine_options = dict(engine_options)
        self._lock = named_lock("SessionManager._lock")
        self._sessions: "OrderedDict[str, ManagedSession]" = OrderedDict()
        self._warm_caches: "OrderedDict[str, WorldCountCache]" = OrderedDict()
        self._building: Dict[str, threading.Lock] = {}
        self._inflight = 0
        self._opened = 0
        self._reopened = 0
        self._evicted = 0
        self._expired = 0
        self._rejected = 0
        self._closed = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._solver_registry = solver_registry
        self._m_opens = self.metrics.counter(
            "manager_session_opens_total",
            "session opens by kind (created = new session, reopened = warm hit)",
            labelnames=("kind",),
        )
        self._m_evictions = self.metrics.counter(
            "manager_session_evictions_total",
            "sessions evicted by reason (lru or expired)",
            labelnames=("reason",),
        )
        self._m_rejections = self.metrics.counter(
            "manager_admission_rejections_total",
            "requests rejected by the max_inflight admission bound",
        )
        self._m_inflight = self.metrics.gauge(
            "manager_inflight_requests",
            "requests currently holding an admission slot",
        )
        self._m_leases = self.metrics.gauge(
            "manager_session_leases",
            "in-flight requests currently holding a session lease",
        )
        self._m_sessions = self.metrics.gauge(
            "manager_live_sessions",
            "sessions currently resident in the LRU",
        )

    # -- admission (backpressure) ---------------------------------------------

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one in-flight slot; raise :class:`Overloaded` when none is free.

        The check is a hard bound, not a queue: a request that cannot be
        admitted is rejected immediately so the client (or its load balancer)
        decides whether to retry, rather than piling threads up behind a
        saturated engine.
        """
        with self._lock:
            if self._inflight >= self._max_inflight:
                self._rejected += 1
                self._m_rejections.inc()
                raise Overloaded(
                    f"{self._inflight} requests in flight (max_inflight={self._max_inflight})",
                    retry_after=self._retry_after,
                )
            self._inflight += 1
            self._m_inflight.set(self._inflight)
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                self._m_inflight.set(self._inflight)

    # -- open / lookup ---------------------------------------------------------

    def open(
        self,
        knowledge_base: KnowledgeBaseLike,
        *,
        engine_options: Union[EngineOptions, Dict[str, Any], None] = None,
        consistency_check: Optional[bool] = None,
        analyze: Optional[str] = None,
    ) -> Tuple[ManagedSession, bool]:
        """The session for a KB: the existing one, or a freshly opened one.

        Idempotent on the KB fingerprint — the returned ``bool`` says whether
        a session was actually created.  Engine options (a wire-shaped dict
        or a whole :class:`~repro.core.options.EngineOptions`), the
        consistency check and the ``analyze`` mode only apply at
        creation; re-opening an existing fingerprint returns it unchanged.
        A fingerprint evicted earlier re-opens with its retained world-count
        cache, so the new session starts warm.  Concurrent opens of the same
        fingerprint build exactly one session (a per-fingerprint build gate),
        so the retained cache cannot be lost to an open/open race.
        """
        kb = RandomWorlds._as_knowledge_base(knowledge_base)
        fingerprint = kb_fingerprint(kb)
        while True:
            to_close = []
            gate: Optional[threading.Lock] = None
            entry: Optional[ManagedSession] = None
            with self._lock:
                if self._closed:
                    raise RuntimeError("the session manager is closed")
                to_close.extend(self._sweep_expired_locked())
                entry = self._sessions.get(fingerprint)
                if entry is not None:
                    self._touch_locked(entry)
                    self._reopened += 1
                    self._m_opens.labels(kind="reopened").inc()
                else:
                    gate = self._building.get(fingerprint)
                    if gate is None:
                        # Deliberately a plain, unnamed lock outside
                        # LOCK_ORDER: acquired here before publication (a
                        # fresh, uncontended lock — the acquire cannot
                        # block) and thereafter only ever awaited bare.
                        gate = threading.Lock()
                        gate.acquire()
                        self._building[fingerprint] = gate
                        break  # this thread builds the session
            for stale in to_close:
                stale.close()
            if entry is not None:
                return entry, False
            # Another thread is already building this fingerprint: wait for
            # it to finish, then re-check the table.
            gate.acquire()
            gate.release()

        try:
            session = self._build_session(kb, fingerprint, engine_options, consistency_check, analyze)
        except BaseException:
            with self._lock:
                self._building.pop(fingerprint, None)
            gate.release()
            raise
        to_close = []
        closed_now = False
        with self._lock:
            self._building.pop(fingerprint, None)
            if self._closed:
                closed_now = True
            else:
                entry = ManagedSession(session, fingerprint, self._clock())
                self._sessions[fingerprint] = entry
                self._warm_caches.pop(fingerprint, None)
                self._opened += 1
                self._m_opens.labels(kind="created").inc()
                self._m_sessions.set(len(self._sessions))
                while len(self._sessions) > self._max_sessions:
                    evicted = self._evict_locked(next(iter(self._sessions)), expired=False)
                    if evicted is not None:
                        to_close.append(evicted)
        gate.release()
        for stale in to_close:
            stale.close()
        if closed_now:
            session.close()
            raise RuntimeError("the session manager is closed")
        return entry, True

    @contextmanager
    def lease(self, session_id: str) -> Iterator[BeliefSession]:
        """Borrow a live session for one request.

        The lease pins the session: LRU/TTL eviction during the lease marks
        the entry defunct but the session itself stays usable (and its
        caches stay warm) until the last lease is released.
        """
        stale = None
        expired = False
        with self._lock:
            if self._closed:
                raise UnknownSession("the session manager is closed")
            entry = self._sessions.get(session_id)
            if entry is None:
                raise UnknownSession(f"no session {session_id!r} (open it first, or it was evicted)")
            if self._expired_locked(entry):
                expired = True
                stale = self._evict_locked(session_id, expired=True)
            else:
                entry.leases += 1
                self._m_leases.inc()
                self._touch_locked(entry)
        if expired:
            if stale is not None:
                stale.close()  # outside the lock: closing may join worker pools
            raise ExpiredSession(f"session {session_id!r} expired; re-open the knowledge base")
        to_close = None
        try:
            yield entry.session
        finally:
            with self._lock:
                entry.leases -= 1
                self._m_leases.dec()
                if entry.defunct and entry.leases == 0:
                    to_close = entry.session
            if to_close is not None:
                to_close.close()

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for ``/healthz`` and the CLI banner."""
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "max_sessions": self._max_sessions,
                "ttl_seconds": self._ttl,
                "inflight": self._inflight,
                "max_inflight": self._max_inflight,
                "opened": self._opened,
                "reopened": self._reopened,
                "evicted": self._evicted,
                "expired": self._expired,
                "rejected": self._rejected,
                "warm_caches": len(self._warm_caches),
            }

    def session_ids(self) -> Tuple[str, ...]:
        """The live session ids, least recently used first."""
        with self._lock:
            return tuple(self._sessions)

    def close(self) -> None:
        """Evict everything and close every unleased session."""
        with self._lock:
            entries = list(self._sessions.values())
            self._sessions.clear()
            self._warm_caches.clear()
            self._closed = True
            to_close = []
            for entry in entries:
                if entry.leases == 0:
                    to_close.append(entry.session)
                else:
                    entry.defunct = True
        for session in to_close:
            session.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _build_session(
        self,
        kb: KnowledgeBase,
        fingerprint: str,
        engine_options: Union[EngineOptions, Dict[str, Any], None],
        consistency_check: Optional[bool],
        analyze: Optional[str],
    ) -> BeliefSession:
        options = dict(self._engine_options)
        options.update(normalise_engine_options(engine_options))
        with self._lock:
            warm_cache = self._warm_caches.pop(fingerprint, None)
        if warm_cache is not None and "cache" not in options:
            options["cache"] = warm_cache
        check = self._consistency_check if consistency_check is None else consistency_check
        mode = self._analyze if analyze is None else analyze
        return BeliefSession(
            kb,
            registry=self._solver_registry,
            consistency_check=check,
            analyze=mode,
            metrics=self.metrics,
            **options,
        )

    def _touch_locked(self, entry: ManagedSession) -> None:
        entry.last_used_at = self._clock()
        self._sessions.move_to_end(entry.session_id)

    def _expired_locked(self, entry: ManagedSession) -> bool:
        return self._ttl is not None and self._clock() - entry.last_used_at > self._ttl

    def _sweep_expired_locked(self) -> list:
        """Evict every expired entry; the caller closes the returned sessions.

        Closing happens outside the manager lock — ``session.close()`` joins
        worker pools, and a blocking join under the lock would stall every
        concurrent ``admit``/``lease``/``open``.
        """
        stale = []
        for session_id in [sid for sid, entry in self._sessions.items() if self._expired_locked(entry)]:
            session = self._evict_locked(session_id, expired=True)
            if session is not None:
                stale.append(session)
        return stale

    def _evict_locked(self, session_id: str, *, expired: bool) -> Optional[BeliefSession]:
        """Drop an entry; return its session if the caller should close it.

        The world-count cache is retained (bounded by ``max_sessions``) so a
        later re-open of the same fingerprint starts warm.  Leased entries
        are marked defunct instead of closed — the last lease release closes
        them.
        """
        entry = self._sessions.pop(session_id)
        self._evicted += 1
        if expired:
            self._expired += 1
        self._m_evictions.labels(reason="expired" if expired else "lru").inc()
        self._m_sessions.set(len(self._sessions))
        cache = entry.session.engine.world_cache
        if cache is not None:
            self._warm_caches[session_id] = cache
            self._warm_caches.move_to_end(session_id)
            while len(self._warm_caches) > self._max_sessions:
                self._warm_caches.popitem(last=False)
        if entry.leases == 0:
            return entry.session
        entry.defunct = True
        return None
