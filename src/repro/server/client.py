"""A thin stdlib client for the HTTP front-end.

Layer contract: this module is the inverse of :mod:`repro.server.app` — it
speaks the wire format (plain ``urllib`` + JSON) and hands back the same
dataclasses the in-process API uses, decoding ``BeliefResponse`` payloads
through the lossless :mod:`repro.service.messages` codec.  It holds no
serving policy and no inference logic; it exists so tests, benchmarks and
examples exercise the service exactly the way a remote caller would.

.. code-block:: python

    from repro.server import Client

    client = Client("http://127.0.0.1:8080")
    session_id = client.open_session("Jaun(Eric) and %(Hep(x) | Jaun(x); x) ~=[1] 0.8")
    response = client.query(session_id, "Hep(Eric)")   # a BeliefResponse
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..core.knowledge_base import KnowledgeBase
from ..service.messages import BeliefResponse, ErrorResponse, QueryRequest, response_from_dict

RequestLike = Union[QueryRequest, str, Dict[str, Any]]
KnowledgeBaseWire = Union[KnowledgeBase, str, Sequence[str], Dict[str, Any]]


class ServerError(RuntimeError):
    """A non-2xx answer from the server, with its decoded error payload.

    ``status`` is the HTTP status, ``code`` the machine-readable error code
    (``"overloaded"``, ``"unknown-session"``, ...) and ``retry_after`` the
    parsed ``Retry-After`` header on 429 responses (else ``None``).
    """

    def __init__(self, status: int, code: str, message: str, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


def kb_payload(knowledge_base: KnowledgeBaseWire) -> Union[str, List[str], Dict[str, Any]]:
    """A knowledge base as its wire form.

    A :class:`KnowledgeBase` is sent as its sentences' textual forms plus its
    explicit vocabulary — reprs re-parse and the vocabulary rides along, so
    the server reconstructs an identical KB (same fingerprint, even for
    symbols no sentence mentions).  Strings, sentence lists and dictionaries
    already in wire form (a recorded trace's ``kb`` payload) pass through
    unchanged.
    """
    if isinstance(knowledge_base, dict):
        return dict(knowledge_base)
    if isinstance(knowledge_base, KnowledgeBase):
        vocabulary = knowledge_base.vocabulary
        return {
            "sentences": [repr(sentence) for sentence in knowledge_base.sentences],
            "vocabulary": {
                "predicates": dict(vocabulary.predicates),
                "functions": dict(vocabulary.functions),
                "constants": list(vocabulary.constants),
            },
        }
    if isinstance(knowledge_base, str):
        return knowledge_base
    return list(knowledge_base)


def _request_payload(request: RequestLike) -> Any:
    if isinstance(request, QueryRequest):
        return request.to_dict()
    return request


class Client:
    """Synchronous HTTP client mirroring the :class:`BeliefSession` verbs.

    ``open_session`` / ``query`` / ``query_batch`` / ``stream`` /
    ``cache_info`` correspond one-to-one to the server routes; ``call`` is
    the raw escape hatch (method, path, optional JSON body → decoded JSON).
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def call(self, method: str, path: str, payload: Optional[Any] = None) -> Any:
        """One HTTP round trip; raises :class:`ServerError` on non-2xx."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            headers={"Content-Type": "application/json"} if body is not None else {},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise self._decode_error(error) from None

    @staticmethod
    def _decode_error(error: urllib.error.HTTPError) -> ServerError:
        code, message = "unknown", ""
        try:
            payload = json.loads(error.read().decode("utf-8"))
            code = payload["error"]["code"]
            message = payload["error"]["message"]
        except Exception:  # pragma: no cover - malformed error body
            message = str(error)
        retry_after = error.headers.get("Retry-After")
        return ServerError(
            error.code, code, message, retry_after=float(retry_after) if retry_after else None
        )

    # -- the service verbs -----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness/counters snapshot."""
        return self.call("GET", "/healthz")

    def open_session(
        self,
        knowledge_base: KnowledgeBaseWire,
        *,
        engine: Optional[Dict[str, Any]] = None,
        consistency_check: Optional[bool] = None,
    ) -> str:
        """Open (or idempotently re-join) the session for a KB; returns its id."""
        return self.open_session_info(
            knowledge_base, engine=engine, consistency_check=consistency_check
        )["session_id"]

    def open_session_info(
        self,
        knowledge_base: KnowledgeBaseWire,
        *,
        engine: Optional[Dict[str, Any]] = None,
        consistency_check: Optional[bool] = None,
    ) -> Dict[str, Any]:
        """Like :meth:`open_session` but returns the full open payload
        (``session_id``, ``created``, ``fingerprint``, ``sentences``)."""
        payload: Dict[str, Any] = {"kb": kb_payload(knowledge_base)}
        if engine is not None:
            payload["engine"] = engine
        if consistency_check is not None:
            payload["consistency_check"] = consistency_check
        return self.call("POST", "/v1/sessions", payload)

    def query(self, session_id: str, request: RequestLike) -> BeliefResponse:
        """Answer one request on the server's warm session."""
        raw = self.call("POST", f"/v1/sessions/{session_id}/query", _request_payload(request))
        return BeliefResponse.from_dict(raw)

    def query_batch(self, session_id: str, requests: Sequence[RequestLike]) -> List[BeliefResponse]:
        """Answer a batch in one round trip; responses come back in order."""
        raw = self.call(
            "POST",
            f"/v1/sessions/{session_id}/query_batch",
            {"requests": [_request_payload(request) for request in requests]},
        )
        return [BeliefResponse.from_dict(item) for item in raw["responses"]]

    def stream(
        self, session_id: str, requests: Iterable[RequestLike]
    ) -> Iterator[Union[BeliefResponse, ErrorResponse]]:
        """Stream a batch over ``POST .../stream``: one NDJSON row per answer.

        A single round trip; rows are yielded as the server flushes them, so
        the first answer arrives while later queries are still computing.  A
        request-scoped failure mid-batch comes back as an
        :class:`~repro.service.messages.ErrorResponse` row and the stream
        continues; a pre-stream failure (unknown session, overload, bad
        payload) raises :class:`ServerError` as usual.
        """
        body = json.dumps(
            {"requests": [_request_payload(request) for request in requests]}
        ).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}/v1/sessions/{session_id}/stream",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            raise self._decode_error(error) from None
        # http.client undoes the chunked transfer coding; iterating the
        # response yields each line as soon as its chunk arrives.
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield response_from_dict(json.loads(line.decode("utf-8")))

    def cache_info(self, session_id: str) -> Optional[Dict[str, Any]]:
        """The session's world-count cache / query-memo counters."""
        return self.call("GET", f"/v1/sessions/{session_id}/cache")["cache"]

    def describe_session(self, session_id: str) -> Dict[str, Any]:
        """Session metadata: fingerprint, sentence count, solver keys."""
        return self.call("GET", f"/v1/sessions/{session_id}")
