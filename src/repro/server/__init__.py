"""The HTTP front-end over the belief service (``repro.service``).

Layer contract: ``repro.server`` turns the in-process session API into a
served one without changing a single answer — HTTP responses are the JSON
``to_dict()`` form of the exact :class:`~repro.service.BeliefResponse` the
session would return in process (experiment E23 gates Fraction identity on
every benchmark KB).  The package splits into three stdlib-only modules:

* :mod:`repro.server.manager` — session lifecycle policy: fingerprint-keyed
  idempotent opens, LRU+TTL eviction with warm-cache retention, and the
  bounded admission queue behind HTTP 429 backpressure;
* :mod:`repro.server.app` — routing and JSON framing on
  ``http.server.ThreadingHTTPServer``;
* :mod:`repro.server.client` — a thin ``urllib`` client returning the same
  dataclasses as the in-process API.

``repro-serve`` (:mod:`repro.server.cli`) is the console entry point; see
``docs/DEPLOYMENT.md`` for endpoints, schemas and operational knobs.
"""

from .app import (
    ROUTES,
    BeliefHTTPServer,
    BeliefRequestHandler,
    make_server,
    route_paths,
    serve_in_background,
)
from .client import Client, ServerError, kb_payload
from .manager import (
    WIRE_ENGINE_OPTIONS,
    ExpiredSession,
    ManagedSession,
    Overloaded,
    SessionManager,
    UnknownSession,
    normalise_engine_options,
)

__all__ = [
    "BeliefHTTPServer",
    "BeliefRequestHandler",
    "Client",
    "ExpiredSession",
    "ManagedSession",
    "Overloaded",
    "ROUTES",
    "ServerError",
    "SessionManager",
    "UnknownSession",
    "WIRE_ENGINE_OPTIONS",
    "kb_payload",
    "make_server",
    "normalise_engine_options",
    "route_paths",
    "serve_in_background",
]
