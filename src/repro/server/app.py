"""The HTTP surface of the belief service: routing and JSON framing only.

Layer contract: this module translates between HTTP and the session API —
it parses request JSON, dispatches to a :class:`~repro.server.manager.SessionManager`,
and serializes :class:`~repro.service.messages.BeliefResponse` objects with
the same ``to_dict()`` codec the in-process API uses, so an HTTP answer is
byte-for-byte the JSON of the in-process answer.  No inference logic and no
eviction policy lives here; those belong to :mod:`repro.service` and
:mod:`repro.server.manager` respectively.

Routes (see ``docs/DEPLOYMENT.md`` for schemas and curl examples):

* ``POST /v1/sessions`` — parse + fingerprint a KB, return its session id
  (idempotent on the fingerprint; 201 on create, 200 on re-open);
* ``POST /v1/sessions/{id}/query`` — one ``QueryRequest`` in, one
  ``BeliefResponse`` out;
* ``POST /v1/sessions/{id}/query_batch`` — ``{"requests": [...]}`` in,
  ``{"responses": [...]}`` out via ``submit_many`` (answers in request
  order);
* ``POST /v1/sessions/{id}/stream`` — ``{"requests": [...]}`` in, chunked
  NDJSON out: one ``BeliefResponse`` (or per-request ``ErrorResponse``)
  row per line, written as each answer finishes, so long workloads arrive
  incrementally;
* ``GET /v1/sessions/{id}`` — session metadata; ``GET .../cache`` — the
  session's ``cache_info()`` counters;
* ``POST /v1/analyze`` — stateless pre-flight analysis of a KB (and
  optional queries): structured diagnostics, compilability verdicts and
  cost predictions, without opening a session;
* ``GET /healthz`` — liveness plus the manager's counter snapshot;
* ``GET /metrics`` — the manager's :class:`~repro.obs.MetricsRegistry` as
  JSON, or Prometheus text with ``?format=prometheus`` (never admission
  gated: a scrape must work while the server is overloaded).

Every response is additionally recorded into the registry (per-route
latency histogram and response-code counters); requests with truncated or
mismatched ``Content-Length`` bodies answer a clean ``400 bad-request``
under the per-connection socket timeout instead of stalling the thread.

Opens may request ``"analyze": "warn" | "strict"``; a strict open of a KB
with error-level diagnostics is rejected with 422 ``analysis-failed`` whose
``error.details.diagnostics`` lists every coded finding.

Built on ``http.server.ThreadingHTTPServer`` — stdlib only, one thread per
connection, with the manager's admission bound (HTTP 429 + ``Retry-After``)
as the explicit backpressure valve in front of the engine.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from .. import analysis as _analysis
from ..analysis.diagnostics import AnalysisError
from ..core.engine import RandomWorldsError
from ..core.knowledge_base import KnowledgeBase
from ..logic.vocabulary import Vocabulary
from ..service.messages import QueryRequest
from ..service.registry import UnsupportedRequest
from ..service.session import ANALYZE_MODES, BeliefSession
from ..worlds.cache import CacheInfo
from ..worlds.counting import InconsistentKnowledgeBase
from .manager import (
    ExpiredSession,
    Overloaded,
    SessionManager,
    UnknownSession,
    normalise_engine_options,
)

# The served surface, frozen for docs and the API-surface snapshot: every
# endpoint the front-end answers, as (HTTP method, path template) pairs.
ROUTES: Tuple[Tuple[str, str], ...] = (
    ("GET", "/healthz"),
    ("GET", "/metrics"),
    ("POST", "/v1/sessions"),
    ("GET", "/v1/sessions/{id}"),
    ("POST", "/v1/sessions/{id}/query"),
    ("POST", "/v1/sessions/{id}/query_batch"),
    ("POST", "/v1/sessions/{id}/stream"),
    ("GET", "/v1/sessions/{id}/cache"),
    ("POST", "/v1/analyze"),
)

_SESSION_PATH = re.compile(
    r"^/v1/sessions/(?P<sid>[0-9a-f]+)(?P<rest>/query_batch|/query|/cache|/stream)?$"
)

# One request body bound (16 MiB): a KB of thousands of sentences fits with
# room to spare; anything larger is more likely a client bug than a KB.
MAX_BODY_BYTES = 16 * 1024 * 1024

# Per-connection socket timeout (seconds).  A client that promises a body it
# never finishes sending (Content-Length larger than what arrives) would
# otherwise park a server thread on a blocking read forever; with the
# timeout the stalled read raises, the handler answers 400 and the
# connection closes.  Idle keep-alive connections time out the same way.
DEFAULT_REQUEST_TIMEOUT = 30.0


class _HTTPFailure(Exception):
    """Internal: carries a ready-to-send error status/payload to the handler."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: Optional[Dict[str, str]] = None,
        details: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = headers or {}
        self.details = details


def _cache_info_payload(info: Optional[CacheInfo]) -> Optional[Dict[str, Any]]:
    if info is None:
        return None
    return {
        "hits": info.hits,
        "misses": info.misses,
        "entries": info.entries,
        "maxsize": info.maxsize,
        "total_classes": info.total_classes,
        "hit_rate": info.hit_rate,
        "memo_hits": info.memo_hits,
        "memo_misses": info.memo_misses,
        "memo_entries": info.memo_entries,
        "memo_maxsize": info.memo_maxsize,
        "memo_hit_rate": info.memo_hit_rate,
    }


def _decode_vocabulary(spec: Any) -> Vocabulary:
    """The wire form of an explicit vocabulary declaration."""
    if not isinstance(spec, dict):
        raise _HTTPFailure(400, "bad-request", "'kb.vocabulary' must be an object")
    return Vocabulary(
        predicates={str(k): int(v) for k, v in (spec.get("predicates") or {}).items()},
        functions={str(k): int(v) for k, v in (spec.get("functions") or {}).items()},
        constants=tuple(str(c) for c in (spec.get("constants") or [])),
    )


def _decode_kb(payload: Any) -> Any:
    """The wire forms of a knowledge base (see :func:`repro.server.client.kb_payload`).

    A string (one or more sentences), a list of sentence strings, or an
    object ``{"sentences": [...], "vocabulary": {"predicates": {...},
    "functions": {...}, "constants": [...]}}`` — the explicit vocabulary
    carries symbols no sentence mentions, so object-form KBs reconstruct
    with their exact fingerprint.
    """
    if isinstance(payload, str):
        return payload
    if isinstance(payload, list):
        if not payload or not all(isinstance(sentence, str) for sentence in payload):
            raise _HTTPFailure(400, "bad-request", "'kb' list items must be sentence strings")
        return KnowledgeBase.from_strings(*payload)
    if isinstance(payload, dict):
        sentences = payload.get("sentences")
        if not isinstance(sentences, list) or not all(isinstance(s, str) for s in sentences):
            raise _HTTPFailure(400, "bad-request", "'kb.sentences' must be a list of sentence strings")
        vocabulary = None
        if payload.get("vocabulary") is not None:
            vocabulary = _decode_vocabulary(payload["vocabulary"])
        return KnowledgeBase.from_strings(*sentences, vocabulary=vocabulary)
    raise _HTTPFailure(
        400,
        "bad-request",
        "'kb' must be a string, a list of sentence strings, or a {sentences, vocabulary} object",
    )


def _decode_analyze_kb(payload: Any) -> Tuple[str, Optional[Vocabulary]]:
    """The analyzer's KB decoding: keep the *text*, so spans and parse/arity
    problems surface as coded diagnostics rather than HTTP 400s.

    Accepts the same three wire forms as :func:`_decode_kb`; the object
    form's explicit vocabulary becomes the analyzer's declared vocabulary,
    which both turns on undeclared-symbol (E101/E102) checking and merges
    into the costed vocabulary exactly as a real open would.
    """
    if isinstance(payload, str):
        return payload, None
    if isinstance(payload, list):
        if not payload or not all(isinstance(sentence, str) for sentence in payload):
            raise _HTTPFailure(400, "bad-request", "'kb' list items must be sentence strings")
        return "\n".join(payload), None
    if isinstance(payload, dict):
        sentences = payload.get("sentences")
        if not isinstance(sentences, list) or not all(isinstance(s, str) for s in sentences):
            raise _HTTPFailure(400, "bad-request", "'kb.sentences' must be a list of sentence strings")
        vocabulary = None
        if payload.get("vocabulary") is not None:
            vocabulary = _decode_vocabulary(payload["vocabulary"])
        return "\n".join(sentences), vocabulary
    raise _HTTPFailure(
        400,
        "bad-request",
        "'kb' must be a string, a list of sentence strings, or a {sentences, vocabulary} object",
    )


def _decode_analysis_options(
    payload: Any, declared_vocabulary: Optional[Vocabulary]
) -> "_analysis.AnalysisOptions":
    """The wire form of :class:`~repro.analysis.AnalysisOptions`."""
    if payload is None:
        payload = {}
    if not isinstance(payload, dict):
        raise _HTTPFailure(400, "bad-request", "'options' must be an object")
    unknown = sorted(set(payload) - {"domain_sizes", "cost_budget", "require_counting"})
    if unknown:
        raise _HTTPFailure(
            400,
            "bad-request",
            f"unknown analysis option(s) {', '.join(map(repr, unknown))}; "
            "expected a subset of ['cost_budget', 'domain_sizes', 'require_counting']",
        )
    domain_sizes = payload.get("domain_sizes")
    if domain_sizes is not None:
        if not isinstance(domain_sizes, list) or not all(
            isinstance(n, int) and not isinstance(n, bool) and n > 0 for n in domain_sizes
        ):
            raise _HTTPFailure(400, "bad-request", "'options.domain_sizes' must be a list of positive integers")
        domain_sizes = tuple(domain_sizes)
    cost_budget = payload.get("cost_budget", _analysis.DEFAULT_COST_BUDGET)
    if not isinstance(cost_budget, int) or isinstance(cost_budget, bool) or cost_budget < 1:
        raise _HTTPFailure(400, "bad-request", "'options.cost_budget' must be a positive integer")
    require_counting = payload.get("require_counting", False)
    if not isinstance(require_counting, bool):
        raise _HTTPFailure(400, "bad-request", "'options.require_counting' must be a boolean")
    return _analysis.AnalysisOptions(
        declared_vocabulary=declared_vocabulary,
        domain_sizes=domain_sizes,
        cost_budget=cost_budget,
        require_counting=require_counting,
    )


def _as_query_request(payload: Any) -> QueryRequest:
    """A wire item as a request: a bare query string or a request object."""
    if isinstance(payload, str):
        return QueryRequest(query=payload)
    if isinstance(payload, dict):
        if "query" not in payload:
            raise ValueError("a query request object needs a 'query' field")
        return QueryRequest.from_dict(payload)
    raise ValueError(f"expected a query string or request object, got {type(payload).__name__}")


class BeliefRequestHandler(BaseHTTPRequestHandler):
    """One HTTP connection; all state lives on ``self.server.manager``."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover - log formatting
            super().log_message(format, *args)

    @property
    def manager(self) -> SessionManager:
        return self.server.manager

    def setup(self) -> None:
        # ``StreamRequestHandler.setup`` applies ``self.timeout`` to the
        # connection socket, so every blocking read on this connection —
        # the request line, headers, and body — is bounded.
        self.timeout = getattr(self.server, "request_timeout", DEFAULT_REQUEST_TIMEOUT)
        super().setup()

    def _read_json(self) -> Any:
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise _HTTPFailure(400, "bad-request", f"invalid Content-Length header: {raw_length!r}")
        if length < 0:
            raise _HTTPFailure(400, "bad-request", f"invalid Content-Length header: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise _HTTPFailure(413, "payload-too-large", f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = self.rfile.read(length) if length else b""
        except OSError:
            # The per-connection socket timeout fired (or the peer reset):
            # the client promised Content-Length bytes and stopped sending.
            raise _HTTPFailure(
                400, "bad-request", "request body could not be read (timed out or connection reset)"
            )
        if len(body) < length:
            raise _HTTPFailure(
                400,
                "bad-request",
                f"request body truncated: Content-Length promised {length} bytes, got {len(body)}",
            )
        if not body:
            raise _HTTPFailure(400, "bad-request", "expected a JSON request body")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPFailure(400, "bad-request", f"request body is not valid JSON: {error}")

    def _send_json(self, status: int, payload: Any, headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self._status = status
        self.wfile.write(body)

    def _send_error_json(self, failure: _HTTPFailure) -> None:
        # The request body may not have been drained (bad route, oversized
        # payload); under HTTP/1.1 keep-alive the leftover bytes would be
        # parsed as the next request, so error responses close the connection.
        self.close_connection = True
        if getattr(self, "_status", 0):
            # The response already started (a streamed body failed midway):
            # nothing coherent can follow the bytes on the wire, so the
            # close above is the whole error signal.
            return
        error: Dict[str, Any] = {"code": failure.code, "message": failure.message}
        if failure.details is not None:
            error["details"] = failure.details
        headers = {"Connection": "close", **(failure.headers or {})}
        self._send_json(failure.status, {"error": error}, headers=headers)

    @contextmanager
    def _translating_errors(self) -> Iterator[None]:
        """Map service/manager exceptions onto HTTP statuses, uniformly."""
        try:
            yield
        except _HTTPFailure:
            raise
        except Overloaded as error:
            raise _HTTPFailure(
                429,
                "overloaded",
                str(error),
                headers={"Retry-After": str(int(math.ceil(error.retry_after)))},
            )
        except ExpiredSession as error:
            raise _HTTPFailure(404, "expired-session", error.message)
        except UnknownSession as error:
            raise _HTTPFailure(404, "unknown-session", error.message)
        except AnalysisError as error:
            details = None
            if error.report is not None:
                details = {"diagnostics": [d.to_dict() for d in error.report.diagnostics]}
            raise _HTTPFailure(422, "analysis-failed", str(error), details=details)
        except InconsistentKnowledgeBase as error:
            raise _HTTPFailure(422, "inconsistent-kb", str(error))
        except UnsupportedRequest as error:
            raise _HTTPFailure(422, "unsupported-request", str(error))
        except RandomWorldsError as error:
            raise _HTTPFailure(422, "query-failed", str(error))
        except (KeyError, TypeError, ValueError) as error:
            raise _HTTPFailure(400, "bad-request", str(error))

    # -- dispatch --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        """Route one request, translating failures and recording metrics."""
        self._status = 0
        self._route_label = "unmatched"
        start = time.perf_counter()
        try:
            try:
                with self._translating_errors():
                    self._route_request(method)
            except _HTTPFailure as failure:
                self._send_error_json(failure)
            except Exception as error:
                self._send_error_json(_HTTPFailure(500, "internal", repr(error)))
        except OSError:  # pragma: no cover - client hung up mid-response
            self.close_connection = True
        finally:
            self._record_route(method, (time.perf_counter() - start) * 1000.0)

    def _route_request(self, method: str) -> None:
        path = urlsplit(self.path).path
        match = _SESSION_PATH.match(path)
        if method == "GET":
            if path == "/healthz":
                self._route_label = "/healthz"
                return self._handle_healthz()
            if path == "/metrics":
                self._route_label = "/metrics"
                return self._handle_metrics()
            if match and match.group("rest") == "/cache":
                self._route_label = "/v1/sessions/{id}/cache"
                return self._handle_cache(match.group("sid"))
            if match and match.group("rest") is None:
                self._route_label = "/v1/sessions/{id}"
                return self._handle_describe(match.group("sid"))
        else:
            if path == "/v1/sessions":
                self._route_label = "/v1/sessions"
                return self._handle_open()
            if path == "/v1/analyze":
                self._route_label = "/v1/analyze"
                return self._handle_analyze()
            if match and match.group("rest") == "/query":
                self._route_label = "/v1/sessions/{id}/query"
                return self._handle_query(match.group("sid"))
            if match and match.group("rest") == "/query_batch":
                self._route_label = "/v1/sessions/{id}/query_batch"
                return self._handle_query_batch(match.group("sid"))
            if match and match.group("rest") == "/stream":
                self._route_label = "/v1/sessions/{id}/stream"
                return self._handle_stream(match.group("sid"))
        raise _HTTPFailure(404, "not-found", f"no route {method} {self.path}")

    def _record_route(self, method: str, elapsed_ms: float) -> None:
        """Per-route latency and response-code counters (never breaks serving)."""
        try:
            metrics = self.manager.metrics
            if metrics is None:
                return
            metrics.counter(
                "http_responses_total",
                "responses by method, route template and status code",
                labelnames=("method", "route", "status"),
            ).labels(method=method, route=self._route_label, status=str(self._status or 0)).inc()
            metrics.histogram(
                "http_request_latency_ms",
                "request wall-clock by method and route template, milliseconds",
                labelnames=("method", "route"),
            ).labels(method=method, route=self._route_label).observe(elapsed_ms)
        except Exception:  # pragma: no cover - defensive
            pass

    # -- handlers --------------------------------------------------------------

    def _handle_healthz(self) -> None:
        self._send_json(200, {"status": "ok", "version": __version__, **self.manager.stats()})

    def _handle_metrics(self) -> None:
        # Deliberately NOT admission-gated: an overloaded server must still
        # answer its scrape, and the registry reads each metric under its own
        # leaf lock, so a scrape never waits on in-flight query work.
        registry = self.manager.metrics
        query = parse_qs(urlsplit(self.path).query)
        requested = (query.get("format") or [None])[0]
        accept = self.headers.get("Accept") or ""
        if requested == "prometheus" or (requested is None and "text/plain" in accept):
            body = registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self._status = 200
            self.wfile.write(body)
            return
        if requested not in (None, "json"):
            raise _HTTPFailure(
                400,
                "bad-request",
                f"unknown metrics format {requested!r}; expected 'json' or 'prometheus'",
            )
        self._send_json(200, {"metrics": registry.snapshot()})

    def _handle_open(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or "kb" not in payload:
            raise _HTTPFailure(400, "bad-request", "expected a JSON object with a 'kb' field")
        kb = _decode_kb(payload["kb"])
        engine_options = normalise_engine_options(payload.get("engine"))
        consistency_check = payload.get("consistency_check")
        if consistency_check is not None and not isinstance(consistency_check, bool):
            raise _HTTPFailure(400, "bad-request", "'consistency_check' must be a boolean")
        analyze = payload.get("analyze")
        if analyze is not None and analyze not in ANALYZE_MODES:
            raise _HTTPFailure(
                400, "bad-request", f"'analyze' must be one of {list(ANALYZE_MODES)}, got {analyze!r}"
            )
        with self.manager.admit():
            entry, created = self.manager.open(
                kb, engine_options=engine_options, consistency_check=consistency_check, analyze=analyze
            )
        self._send_json(
            201 if created else 200,
            {
                "session_id": entry.session_id,
                "created": created,
                "fingerprint": entry.session.fingerprint,
                "sentences": len(entry.session.knowledge_base),
            },
        )

    def _handle_query(self, session_id: str) -> None:
        payload = self._read_json()
        request = _as_query_request(payload)
        with self.manager.admit(), self.manager.lease(session_id) as session:
            response = session.submit(request)
        self._send_json(200, response.to_dict())

    def _handle_query_batch(self, session_id: str) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
            raise _HTTPFailure(400, "bad-request", "expected a JSON object with a 'requests' list")
        requests = [_as_query_request(item) for item in payload["requests"]]
        with self.manager.admit(), self.manager.lease(session_id) as session:
            responses = session.submit_many(requests)
        self._send_json(200, {"responses": [response.to_dict() for response in responses]})

    def _handle_stream(self, session_id: str) -> None:
        """``{"requests": [...]}`` in, chunked NDJSON out, one row per answer.

        Each row is written (and flushed) as its answer finishes, so the
        first result reaches the client while later queries are still
        computing.  Rows are the same ``to_dict()`` JSON ``query_batch``
        returns; a request-scoped failure mid-batch becomes an
        ``ErrorResponse`` row (``{"error": {...}}``) and the batch
        continues — only a session-scoped failure truncates the stream,
        which the chunked framing surfaces as a protocol error rather than
        a clean end.
        """
        payload = self._read_json()
        if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
            raise _HTTPFailure(400, "bad-request", "expected a JSON object with a 'requests' list")
        requests = [_as_query_request(item) for item in payload["requests"]]
        with self.manager.admit(), self.manager.lease(session_id) as session:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            self._status = 200
            try:
                for response in session.stream(requests):
                    self._write_chunk(json.dumps(response.to_dict()).encode("utf-8") + b"\n")
            except Exception:
                # Headers (and possibly rows) are already on the wire: no
                # error body can follow.  Skipping the terminal chunk makes
                # the truncation visible to the client.
                self.close_connection = True
                raise
            self._write_chunk(b"")

    def _write_chunk(self, data: bytes) -> None:
        """One HTTP/1.1 chunk; empty data writes the terminal chunk."""
        if data:
            self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
        else:
            self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def _handle_analyze(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) or "kb" not in payload:
            raise _HTTPFailure(400, "bad-request", "expected a JSON object with a 'kb' field")
        kb_text, declared = _decode_analyze_kb(payload["kb"])
        queries = payload.get("queries") or []
        if not isinstance(queries, list) or not all(isinstance(q, str) for q in queries):
            raise _HTTPFailure(400, "bad-request", "'queries' must be a list of query strings")
        options = _decode_analysis_options(payload.get("options"), declared)
        with self.manager.admit():
            report = _analysis.analyze(kb_text, queries=queries, options=options)
        self._send_json(200, report.to_dict())

    def _handle_cache(self, session_id: str) -> None:
        with self.manager.lease(session_id) as session:
            info = session.cache_info()
        self._send_json(200, {"session_id": session_id, "cache": _cache_info_payload(info)})

    def _handle_describe(self, session_id: str) -> None:
        with self.manager.lease(session_id) as session:
            payload = self._describe(session_id, session)
        self._send_json(200, payload)

    def _describe(self, session_id: str, session: BeliefSession) -> Dict[str, Any]:
        return {
            "session_id": session_id,
            "fingerprint": session.fingerprint,
            "sentences": len(session.knowledge_base),
            "solver_keys": list(session.registry.keys()),
        }


class BeliefHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SessionManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: SessionManager,
        *,
        verbose: bool = False,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        super().__init__(address, BeliefRequestHandler)
        self.manager = manager
        self.verbose = verbose
        self.request_timeout = request_timeout

    @property
    def url(self) -> str:
        """The server's base URL (useful with ephemeral ``port=0`` binds)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    manager: Optional[SessionManager] = None,
    *,
    verbose: bool = False,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    **manager_options: Any,
) -> BeliefHTTPServer:
    """Build a ready-to-run server (``port=0`` binds an ephemeral port).

    Pass an existing manager, or manager keyword options
    (``max_sessions``, ``ttl_seconds``, ``max_inflight``, engine options,
    ...) to build a private one.  ``request_timeout`` bounds every blocking
    socket read per connection (see :data:`DEFAULT_REQUEST_TIMEOUT`).
    """
    if manager is None:
        manager = SessionManager(**manager_options)
    elif manager_options:
        raise ValueError("pass manager options or a manager instance, not both")
    return BeliefHTTPServer((host, port), manager, verbose=verbose, request_timeout=request_timeout)


@contextmanager
def serve_in_background(
    manager: Optional[SessionManager] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    **manager_options: Any,
) -> Iterator[BeliefHTTPServer]:
    """Run a server on a daemon thread for the scope of a ``with`` block.

    The pattern tests, benchmarks and ``examples/http_service.py`` share:
    bind an ephemeral port, serve until the block exits, then shut down and
    close the manager (and every session it still holds).
    """
    server = make_server(
        host, port, manager, verbose=verbose, request_timeout=request_timeout, **manager_options
    )
    thread = threading.Thread(target=server.serve_forever, name="repro-serve", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        server.manager.close()


def route_paths() -> List[str]:
    """The served path templates (used by the docs-freshness checks)."""
    return [path for _, path in ROUTES]
