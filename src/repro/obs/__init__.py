"""Process-local observability for the belief service (stdlib only).

Layer contract: ``repro.obs`` depends on nothing else in the package and
knows nothing about sessions, caches or HTTP — it supplies the measurement
primitives (:class:`MetricsRegistry` with counter/gauge/histogram families)
that the serving layers instrument themselves with:

* :mod:`repro.service.session` records per-solver submit latency, the
  per-request cache/memo counter movement and compiled-vs-fallback
  evaluation counts;
* :mod:`repro.server.manager` records opens, evictions, admission
  rejections and lease/in-flight occupancy;
* :mod:`repro.server.app` records per-route latency and response codes,
  and serves the registry at ``GET /metrics`` as JSON or Prometheus text.

See ``docs/DEPLOYMENT.md`` ("Metrics") for the served form and examples;
``benchmarks/bench_e26_streaming_metrics.py`` (experiment E26) records the
histogram summaries under concurrent streaming load.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
]
