"""A lock-cheap, dependency-free metrics registry for the serving stack.

Layer contract: this module owns *measurement primitives only* — counters,
gauges and fixed-bucket histograms, grouped into labelled families under a
:class:`MetricsRegistry` — and knows nothing about sessions, caches or HTTP.
The layers that serve traffic (:mod:`repro.service.session`,
:mod:`repro.server.manager`, :mod:`repro.server.app`) instrument themselves
against a shared registry, and ``GET /metrics`` exposes two read-only views:
:meth:`MetricsRegistry.snapshot` (JSON) and
:meth:`MetricsRegistry.render_prometheus` (the Prometheus text exposition
format), so the same numbers feed dashboards and ad-hoc ``curl``.

Locking is deliberately fine-grained and leaf-only: every child metric has
its own :class:`threading.Lock` guarding a handful of integer/float updates,
family and registry locks guard only dictionary creation, and no metric lock
is ever held while another lock is acquired.  A scrape therefore never
blocks an in-flight query (it reads each child under its own lock for a few
instructions), and instrumented hot paths never contend on a global lock —
the property the ``/metrics`` concurrency tests pin down.

Histograms use fixed upper-bound buckets chosen at creation
(:data:`DEFAULT_LATENCY_BUCKETS_MS` suits millisecond latencies): observing
is one bisect plus three additions, and bucket counts are stored
non-cumulatively (their sum equals the observation count) with the
cumulative form derived only when rendering Prometheus text.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..statics.runtime import named_lock

# Upper bucket bounds (milliseconds) spanning microsecond-ish memo hits to
# multi-second cold enumerations; the implicit +Inf bucket is always last.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing count (one label set of a counter family)."""

    __slots__ = ("_lock", "_value")

    kind = "counter"

    def __init__(self) -> None:
        self._lock = named_lock("Counter._lock")
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (>= 0; counters never decrease)."""
        if amount < 0:
            raise ValueError(f"counters only increase; got inc({amount!r})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (one label set of a gauge family)."""

    __slots__ = ("_lock", "_value")

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = named_lock("Gauge._lock")
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket observations (one label set of a histogram family).

    ``bucket_counts`` are *non-cumulative*: index ``i`` counts observations
    in ``(bounds[i-1], bounds[i]]`` and the final slot is the implicit
    ``+Inf`` bucket, so the counts always sum to :attr:`count` exactly —
    the invariant the metrics test suite asserts under concurrent load.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        self._lock = named_lock("Histogram._lock")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum: float = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; the last entry is ``+Inf``."""
        with self._lock:
            return list(self._counts)

    def sample(self) -> Dict[str, Any]:
        with self._lock:
            counts, total, count = list(self._counts), self._sum, self._count
        buckets = [
            {"le": bound, "count": found} for bound, found in zip(self._bounds, counts)
        ]
        buckets.append({"le": "+Inf", "count": counts[-1]})
        return {"count": count, "sum": total, "buckets": buckets}


class MetricFamily:
    """One named metric and its per-label-set children.

    ``labels(**values)`` returns (creating on first use) the child for one
    label-value combination; a label-less family proxies the child methods
    (``inc``/``dec``/``set``/``observe``/``value``) directly, so
    ``registry.counter("x").inc()`` reads naturally.
    """

    __slots__ = ("name", "help", "labelnames", "kind", "_factory", "_lock", "_children")

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - prometheus terminology
        labelnames: Tuple[str, ...],
        factory: Callable[[], Any],
        kind: str,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.kind = kind
        self._factory = factory
        self._lock = named_lock("MetricFamily._lock")
        self._children: "OrderedDict[Tuple[str, ...], Any]" = OrderedDict()

    def labels(self, **labelvalues: Any) -> Any:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory()
                self._children[key] = child
        return child

    def _solo(self) -> Any:
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} requires labels {list(self.labelnames)}")
        return self.labels()

    # Label-less convenience: the family stands in for its only child.
    def inc(self, amount: float = 1) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def samples(self) -> List[Tuple[Dict[str, str], Any]]:
        """Every ``(labels dict, child)`` pair, in creation order."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child) for key, child in items]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return _format_number(bound)


def _label_text(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + inner + "}"


class MetricsRegistry:
    """A named collection of metric families with two read-only exports.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent getters: asking
    for an existing name returns the existing family (and raises if the kind
    or label names disagree), so independent layers can share one registry
    without coordinating creation order.  All metric names are prefixed with
    the registry ``namespace`` (default ``"repro"``).
    """

    def __init__(self, namespace: str = "repro") -> None:
        self._namespace = namespace
        self._lock = named_lock("MetricsRegistry._lock")
        self._families: "OrderedDict[str, MetricFamily]" = OrderedDict()

    @property
    def namespace(self) -> str:
        return self._namespace

    def _family(
        self,
        kind: str,
        name: str,
        help: str,  # noqa: A002 - prometheus terminology
        labelnames: Iterable[str],
        factory: Callable[[], Any],
    ) -> MetricFamily:
        full_name = f"{self._namespace}_{name}" if self._namespace else name
        names = tuple(labelnames)
        with self._lock:
            family = self._families.get(full_name)
            if family is not None:
                if family.kind != kind or family.labelnames != names:
                    raise ValueError(
                        f"metric {full_name!r} already registered as a {family.kind} "
                        f"with labels {list(family.labelnames)}"
                    )
                return family
            family = MetricFamily(full_name, help, names, factory, kind)
            self._families[full_name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()  # noqa: A002
    ) -> MetricFamily:
        """A monotonically increasing counter family."""
        return self._family("counter", name, help, labelnames, Counter)

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()  # noqa: A002
    ) -> MetricFamily:
        """A gauge family (a value that can go up and down)."""
        return self._family("gauge", name, help, labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002 - prometheus terminology
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> MetricFamily:
        """A fixed-bucket histogram family."""
        bounds = tuple(buckets)
        return self._family("histogram", name, help, labelnames, lambda: Histogram(bounds))

    # -- read-only exports -----------------------------------------------------

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> Dict[str, Any]:
        """Every family as a JSON-compatible dict (histogram buckets non-cumulative)."""
        result: Dict[str, Any] = {}
        for family in self.families():
            values = []
            for labels, child in family.samples():
                sample = child.sample()
                sample["labels"] = labels
                values.append(sample)
            result[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return result

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.samples():
                if family.kind == "histogram":
                    sample = child.sample()
                    cumulative = 0
                    for bucket in sample["buckets"]:
                        cumulative += bucket["count"]
                        bound = bucket["le"]
                        le = bound if isinstance(bound, str) else _format_bound(bound)
                        label_text = _label_text(labels, extra=("le", le))
                        lines.append(f"{family.name}_bucket{label_text} {cumulative}")
                    label_text = _label_text(labels)
                    lines.append(f"{family.name}_sum{label_text} {_format_number(sample['sum'])}")
                    lines.append(f"{family.name}_count{label_text} {sample['count']}")
                else:
                    label_text = _label_text(labels)
                    lines.append(f"{family.name}{label_text} {_format_number(child.value)}")
        return "\n".join(lines) + "\n"
