"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail; this setup.py lets ``pip install -e . --no-build-isolation
--no-use-pep517`` use the legacy develop path.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
