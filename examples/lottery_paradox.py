"""The lottery paradox, unique names, and convergence of the finite counts.

Random worlds dissolves the lottery paradox quantitatively: each ticket holder
is very unlikely to win (probability 1/N), yet someone certainly wins.  The
script also shows the automatic unique-names bias (Lifschitz's benchmark C1)
and prints the exact finite-domain probabilities ``Pr^tau_N`` converging to
their limits — the "figure" of experiment E17.
"""

from __future__ import annotations

from repro.core import RandomWorlds
from repro.logic import ToleranceVector, Vocabulary, parse
from repro.workloads import paper_kbs
from repro.worlds import counting_curve


def lottery() -> None:
    engine = RandomWorlds(domain_sizes=(8, 12, 16, 20))
    print("The lottery: exactly one winner among the ticket holders")
    for tickets in (5, 10, 20):
        kb = paper_kbs.lottery(tickets)
        result = engine.degree_of_belief("Winner(C)", kb)
        print(f"  {tickets:>3} tickets: Pr(Winner(C)) = {result.value:.4f}  (1/{tickets} = {1 / tickets:.4f})")
    someone = engine.degree_of_belief("exists x. Winner(x)", paper_kbs.lottery(10))
    print(f"  ... and Pr(someone wins) = {someone.value:.4f}")
    unknown = engine.degree_of_belief("Winner(C)", paper_kbs.lottery(None))
    print(f"  with an unspecified large lottery Pr(Winner(C)) = {unknown.value:.4f} (tends to 0)")


def unique_names() -> None:
    engine = RandomWorlds(domain_sizes=(8, 12, 16, 20))
    print()
    print("Unique names (Lifschitz benchmark C1)")
    kb = paper_kbs.lifschitz_names()
    result = engine.degree_of_belief("not (Ray = Drew)", kb)
    print(f"  Pr(Ray != Drew | Ray = Reiter, Drew = McDermott) = {result.value:.4f}")


def convergence_curve() -> None:
    print()
    print("Convergence of the exact finite counts (hepatitis example, tau = 0.02)")
    kb = paper_kbs.hepatitis_simple()
    vocabulary = kb.vocabulary.merge(Vocabulary.from_formulas([parse("Hep(Eric)")]))
    curve = counting_curve(
        parse("Hep(Eric)"), kb.formula, vocabulary, (8, 12, 16, 24, 32, 40), ToleranceVector.uniform(0.02)
    )
    for domain_size, probability in curve.defined_points():
        bar = "#" * int(round(float(probability) * 50))
        print(f"  N={domain_size:>3}  Pr = {float(probability):.4f}  {bar}")
    print("  limit (Definition 4.3): 0.8")


def main() -> None:
    lottery()
    unique_names()
    convergence_curve()


if __name__ == "__main__":
    main()
