"""Serve degrees of belief over HTTP: the full request path in one script.

Run with ``python examples/http_service.py``.

The script starts a ``repro-serve``-equivalent server on an ephemeral port,
opens a session for the lottery-paradox knowledge base over HTTP, streams a
mixed workload through it, and shows the three serving behaviours the
front-end adds on top of the session API: idempotent session routing (same
KB ⇒ same session id), warm-cache amortisation (the cache counters are
visible over the wire), and explicit backpressure (a saturated admission
gate answers 429 with ``Retry-After`` instead of queueing).

In production you would run ``repro-serve --port 8080 ...`` as its own
process; everything below works identically against it.
"""

from __future__ import annotations

from contextlib import ExitStack

from repro.server import Client, ServerError, SessionManager, serve_in_background
from repro.service import QueryRequest
from repro.workloads import paper_kbs

WORKLOAD = [
    "Winner(C)",
    "Ticket(C)",
    "not Winner(C)",
    "exists x. Winner(x)",
    "Winner(C) and Ticket(C)",
    "Winner(C)",  # a repeat: answered by the query memo, O(1)
]


def main() -> None:
    knowledge_base = paper_kbs.lottery(5)
    manager = SessionManager(max_inflight=4, ttl_seconds=3600, domain_sizes=(8, 12, 16, 20))

    with serve_in_background(manager) as server:
        client = Client(server.url)
        print(f"Server up at {server.url}")
        print(f"Health: {client.healthz()['status']}")
        print()

        # Open a session: the KB is parsed, fingerprinted and bound to a warm
        # engine stack exactly once, server-side.
        opened = client.open_session_info(knowledge_base)
        session_id = opened["session_id"]
        print(f"Opened session {session_id} (created={opened['created']})")

        # Re-posting the same KB is idempotent: same fingerprint, same session.
        again = client.open_session_info(knowledge_base)
        print(f"Re-posting the KB re-joins it: created={again['created']}")
        print()

        # Stream the workload over HTTP; every answer reuses the warm caches.
        print("Streaming the lottery workload:")
        for query, response in zip(WORKLOAD, client.stream(session_id, WORKLOAD)):
            value = "undefined" if response.value is None else f"{response.value:.4f}"
            print(f"  Pr({query}) = {value:<10} [{response.result.method}, {response.elapsed_ms:.1f} ms]")
        print()

        # One batch round trip answers many requests in request order.
        batch = client.query_batch(session_id, [QueryRequest(query=q) for q in WORKLOAD])
        print(f"Batch round trip answered {len(batch)} requests")

        cache = client.cache_info(session_id)
        print(
            f"Warm session cache: {cache['entries']} decompositions, "
            f"hit rate {cache['hit_rate']:.0%}, memo hit rate {cache['memo_hit_rate']:.0%}"
        )
        print()

        # Backpressure is explicit: saturate the admission gate and the server
        # answers 429 + Retry-After instead of queueing unboundedly.
        with ExitStack() as stack:
            for _ in range(manager.max_inflight):
                stack.enter_context(manager.admit())
            try:
                client.query(session_id, "Winner(C)")
            except ServerError as error:
                print(f"Overloaded: HTTP {error.status} [{error.code}], retry after {error.retry_after}s")
        print(f"After slots free up: Pr(Winner(C)) = {client.query(session_id, 'Winner(C)').value:.4f}")


if __name__ == "__main__":
    main()
