"""Default reasoning over a taxonomy: Tweety, Opus, and the competing systems.

The script reproduces the qualitative landscape of Section 3: random worlds
handles specificity, irrelevance, exceptional-subclass inheritance and the
drowning problem out of the box, while the classical propositional systems
each stumble somewhere — p-entailment (ε-semantics) cannot ignore irrelevant
information, System-Z blocks inheritance to exceptional subclasses, and the
GMP90 maximum-entropy relation (which Theorem 6.1 shows is a fragment of
random worlds) recovers it.
"""

from __future__ import annotations

from repro.core import RandomWorlds
from repro.core.defaults import DefaultReasoner
from repro.defaults import DefaultRule, MaxEntDefaultReasoner, RuleSet, p_entails, z_entails
from repro.workloads import paper_kbs


def first_order_view() -> None:
    engine = RandomWorlds()
    reasoner = DefaultReasoner(engine)

    print("Random worlds on the first-order knowledge base")
    print("  birds fly, penguins don't, penguins are birds, birds are warm-blooded,")
    print("  yellow things are easy to see; Tweety is a yellow penguin")
    kb = paper_kbs.tweety_easy_to_see().conjoin("%(WarmBlooded(x) | Bird(x); x) ~=[4] 1")

    for query in ("Fly(Tweety)", "WarmBlooded(Tweety)", "EasyToSee(Tweety)"):
        result = engine.degree_of_belief(query, kb)
        verdict = "concluded" if reasoner.concludes(kb, query) else (
            "rejected" if reasoner.rejects(kb, query) else "undecided"
        )
        print(f"  Pr({query}) = {result.value:.3f}  -> {verdict}  [{result.method}]")

    print()
    print("The taxonomy of swimmers (Example 5.15): Opus inherits from penguins")
    taxonomy = paper_kbs.swimming_taxonomy().conjoin("Black(Opus)")
    result = engine.degree_of_belief("Swims(Opus)", taxonomy)
    print(f"  Pr(Swims(Opus)) = {result.value:.3f}  [{result.method}]")


def propositional_baselines() -> None:
    rules = RuleSet.parse("Bird -> Fly", "Penguin -> not Fly", "Penguin -> Bird", "Bird -> Warm")
    queries = [
        DefaultRule.parse("Penguin -> not Fly"),
        DefaultRule.parse("Penguin and Yellow -> not Fly"),
        DefaultRule.parse("Penguin -> Warm"),
    ]
    maxent = MaxEntDefaultReasoner(rules)

    print()
    print("Propositional baselines on {Bird->Fly, Penguin->~Fly, Penguin->Bird, Bird->Warm}")
    header = f"  {'query':<28} {'p-entailment':<14} {'System-Z':<10} {'GMP90 / random worlds':<22}"
    print(header)
    for query in queries:
        p_answer = p_entails(rules, query)
        z_answer = z_entails(rules, query)
        me_answer = maxent.me_plausible(query).accepted
        print(f"  {str(query):<28} {str(p_answer):<14} {str(z_answer):<10} {str(me_answer):<22}")
    print()
    print("  (the last line is the drowning problem: only the maximum-entropy /")
    print("   random-worlds reading lets the penguin inherit warm-bloodedness)")


def main() -> None:
    first_order_view()
    propositional_baselines()


if __name__ == "__main__":
    main()
