"""Quickstart: open a belief session and submit queries to it.

Run with ``python examples/quickstart.py``.

The session API is the canonical surface: ``open_session(kb)`` normalises,
fingerprints and consistency-checks the knowledge base once, and every
``submit`` reuses the session's warm caches.  Requests and responses are
plain dataclasses that round-trip losslessly through JSON, so the same shape
works in-process and over the wire.  The classic
``RandomWorlds().degree_of_belief(query, kb)`` surface still works — it is a
thin shim over a private session.
"""

from __future__ import annotations

import json

from repro.core import KnowledgeBase
from repro.service import QueryRequest, open_session


def main() -> None:
    knowledge_base = KnowledgeBase.from_strings(
        # "80% of patients with jaundice have hepatitis"
        "%(Hep(x) | Jaun(x); x) ~=[1] 0.8",
        # "All patients with hepatitis have jaundice"
        "forall x. (Hep(x) -> Jaun(x))",
        # "Patients with hepatitis typically have a fever"  (a default rule)
        "%(Fever(x) | Hep(x); x) ~=[2] 1",
        # What we know about Eric
        "Jaun(Eric)",
    )

    print("Knowledge base:")
    for sentence in knowledge_base:
        print(f"  {sentence!r}")
    print()

    with open_session(knowledge_base) as session:
        print(f"Session open (KB fingerprint {session.fingerprint})")
        print()

        queries = ["Hep(Eric)", "Fever(Eric)", "Jaun(Eric)", "not Hep(Eric)"]
        for query, response in zip(queries, session.submit_many(queries)):
            result = response.result
            value = "undefined" if result.value is None else f"{result.value:.4f}"
            print(f"Pr({query}) = {value:<10} [{result.method}]")

        print()
        print("Adding irrelevant information about Eric does not change the answer:")
        extended = session.knowledge_base.conjoin("Tall(Eric)", "Smoker(Eric)")
        with open_session(extended) as extended_session:
            response = extended_session.submit("Hep(Eric)")
            print(f"Pr(Hep(Eric) | ... and Tall(Eric) and Smoker(Eric)) = {response.value:.4f}")

        print()
        print("Responses serialize losslessly — the same schema works over the wire:")
        response = session.submit(QueryRequest(query="Hep(Eric)", request_id="wire-demo"))
        print(json.dumps(response.to_dict(), indent=2, default=str)[:400], "...")


if __name__ == "__main__":
    main()
