"""Quickstart: induce degrees of belief from a small statistical knowledge base.

Run with ``python examples/quickstart.py``.

The knowledge base mixes the three kinds of information the random-worlds
method is designed for: a statistical assertion, a first-order (taxonomic)
fact, and ground facts about a particular individual.  The engine picks the
appropriate computation path automatically and reports which one it used.
"""

from __future__ import annotations

from repro.core import KnowledgeBase, RandomWorlds


def main() -> None:
    knowledge_base = KnowledgeBase.from_strings(
        # "80% of patients with jaundice have hepatitis"
        "%(Hep(x) | Jaun(x); x) ~=[1] 0.8",
        # "All patients with hepatitis have jaundice"
        "forall x. (Hep(x) -> Jaun(x))",
        # "Patients with hepatitis typically have a fever"  (a default rule)
        "%(Fever(x) | Hep(x); x) ~=[2] 1",
        # What we know about Eric
        "Jaun(Eric)",
    )

    engine = RandomWorlds()

    queries = [
        "Hep(Eric)",
        "Fever(Eric)",
        "Jaun(Eric)",
        "not Hep(Eric)",
    ]

    print("Knowledge base:")
    for sentence in knowledge_base:
        print(f"  {sentence!r}")
    print()

    for query in queries:
        result = engine.degree_of_belief(query, knowledge_base)
        value = "undefined" if result.value is None else f"{result.value:.4f}"
        print(f"Pr({query}) = {value:<10}  [{result.method}]")

    print()
    print("Adding irrelevant information about Eric does not change the answer:")
    extended = knowledge_base.conjoin("Tall(Eric)", "Smoker(Eric)")
    result = engine.degree_of_belief("Hep(Eric)", extended)
    print(f"Pr(Hep(Eric) | ... and Tall(Eric) and Smoker(Eric)) = {result.value:.4f}  [{result.method}]")


if __name__ == "__main__":
    main()
