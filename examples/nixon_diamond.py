"""The Nixon diamond: combining evidence from competing reference classes.

Nixon is both a Quaker and a Republican.  Reference-class systems give up when
the two classes disagree; random worlds combines them by Dempster's rule
(Theorem 5.26).  The script sweeps the class statistics, shows the special
cases the paper highlights (a neutral class, two agreeing classes, conflicting
defaults with and without declared priorities), and contrasts the answer with
the reference-class baselines.
"""

from __future__ import annotations

from repro.core import RandomWorlds
from repro.evidence import dempster_combine
from repro.reference_class import BaselineComparison
from repro.workloads import paper_kbs


def sweep() -> None:
    engine = RandomWorlds()
    print("Sweep of the class statistics (alpha for Quakers, beta for Republicans)")
    print(f"  {'alpha':>6} {'beta':>6} {'random worlds':>14} {'delta(alpha,beta)':>18}")
    for alpha, beta in [(0.8, 0.8), (0.8, 0.5), (0.7, 0.4), (0.9, 0.2), (0.6, 0.6)]:
        kb = paper_kbs.nixon_diamond(alpha, beta)
        result = engine.degree_of_belief("Pacifist(Nixon)", kb)
        print(f"  {alpha:>6} {beta:>6} {result.value:>14.4f} {dempster_combine([alpha, beta]):>18.4f}")


def conflicting_defaults() -> None:
    engine = RandomWorlds()
    print()
    print("Conflicting defaults (Quakers are typically pacifists, Republicans typically not)")
    independent = engine.degree_of_belief("Pacifist(Nixon)", paper_kbs.nixon_diamond(1.0, 0.0))
    print(
        "  independent default strengths: "
        + (
            "limit does not exist"
            if not independent.exists or independent.value is None
            else f"{independent.value:.3f}"
        )
    )
    shared = engine.degree_of_belief(
        "Pacifist(Nixon)", paper_kbs.nixon_diamond(1.0, 0.0, shared_tolerance=True)
    )
    print(f"  defaults declared equally strong: Pr = {shared.value:.3f}")


def versus_reference_classes() -> None:
    print()
    print("Fred has high cholesterol (15% risk) and smokes heavily (9% risk)")
    comparison = BaselineComparison()
    row = comparison.compare("Heart(Fred)", paper_kbs.fred_heart_disease())
    print(f"  Reichenbach reference class : {row.reichenbach.interval}  (vacuous: {row.reichenbach.vacuous})")
    print(f"  Kyburg (with strength rule) : {row.kyburg.interval}  (vacuous: {row.kyburg.vacuous})")
    print(f"  random worlds               : {row.random_worlds.value:.4f}  [{row.random_worlds.method}]")
    print("  (two pieces of evidence against heart disease combine to below both inputs)")


def main() -> None:
    sweep()
    conflicting_defaults()
    versus_reference_classes()


if __name__ == "__main__":
    main()
