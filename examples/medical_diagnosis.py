"""Medical diagnosis: direct inference, specificity, irrelevance and independence.

This example walks through the hepatitis scenario that motivates the paper's
introduction (a doctor deciding how to treat Eric), showing how the different
closed-form theorems and the semantic engines cooperate:

* direct inference (Theorem 5.6) uses the statistics for exactly the class of
  patients matching what is known about Eric;
* the minimal-reference-class theorem (5.16) ignores irrelevant findings and
  switches to more specific statistics when they exist;
* the independence theorem (5.27) multiplies degrees of belief for medically
  unrelated questions;
* the max-entropy and exact-counting engines confirm the analytic numbers.
"""

from __future__ import annotations

from repro.core import KnowledgeBase, RandomWorlds
from repro.logic import parse


def show(engine: RandomWorlds, label: str, query: str, knowledge_base: KnowledgeBase) -> None:
    result = engine.degree_of_belief(query, knowledge_base)
    value = "undefined" if result.value is None else f"{result.value:.4f}"
    print(f"  {label:<58} {value:<10} [{result.method}]")


def main() -> None:
    engine = RandomWorlds()

    base = KnowledgeBase.from_strings(
        "%(Hep(x) | Jaun(x); x) ~=[1] 0.8",
        "%(Hep(x); x) <~[2] 0.05",
        "%(Hep(x) | Jaun(x) and Fever(x); x) ~=[3] 1",
        "Jaun(Eric)",
    )

    print("1. Direct inference and specificity")
    show(engine, "Pr(Hep(Eric) | jaundice)", "Hep(Eric)", base)
    show(
        engine,
        "Pr(Hep(Eric) | jaundice, fever)  -- more specific class",
        "Hep(Eric)",
        base.conjoin("Fever(Eric)"),
    )
    show(
        engine,
        "Pr(Hep(Eric) | jaundice, tall, smoker) -- irrelevant info",
        "Hep(Eric)",
        base.conjoin("Tall(Eric)", "Smoker(Eric)"),
    )

    print()
    print("2. Information about other patients does not interfere")
    show(engine, "Pr(Hep(Eric) | ... and Hep(Tom))", "Hep(Eric)", base.conjoin("Hep(Tom)"))

    print()
    print("3. Independence across unrelated findings (Theorem 5.27)")
    with_age = base.conjoin("Patient(Eric)", "%(Over60(x) | Patient(x); x) ~=[5] 0.4")
    show(engine, "Pr(Over60(Eric))", "Over60(Eric)", with_age)
    result = engine.degree_of_belief(parse("Hep(Eric) and Over60(Eric)"), with_age)
    print(f"  {'Pr(Hep(Eric) and Over60(Eric)) = 0.8 x 0.4':<58} {result.value:.4f}     [{result.method}]")

    print()
    print("4. Cross-checking the analytic answer with the semantic engines")
    for method in ("analytic", "maxent", "counting"):
        result = engine.degree_of_belief("Hep(Eric)", base, method=method)
        value = "undefined" if result.value is None else f"{result.value:.4f}"
        print(f"  method={method:<10} Pr(Hep(Eric)) = {value}")


if __name__ == "__main__":
    main()
