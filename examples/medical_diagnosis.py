"""Medical diagnosis through the session API: one KB, many solvers.

This example walks through the hepatitis scenario that motivates the paper's
introduction (a doctor deciding how to treat Eric), showing how the different
closed-form theorems and the semantic engines cooperate — and how every
inference family answers through the same ``submit`` path:

* direct inference (Theorem 5.6) uses the statistics for exactly the class of
  patients matching what is known about Eric;
* the minimal-reference-class theorem (5.16) ignores irrelevant findings and
  switches to more specific statistics when they exist;
* the independence theorem (5.27) multiplies degrees of belief for medically
  unrelated questions;
* the max-entropy and exact-counting engines confirm the analytic numbers;
* the reference-class baselines of Section 2 answer the same request schema
  under their own solver keys.
"""

from __future__ import annotations

from repro.core import KnowledgeBase
from repro.service import BeliefSession, QueryRequest, open_session


def show(session: BeliefSession, label: str, query: str, method: str = "auto") -> None:
    response = session.submit(QueryRequest(query=query, method=method))
    result = response.result
    value = "undefined" if result.value is None else f"{result.value:.4f}"
    print(f"  {label:<58} {value:<10} [{result.method}]")


def main() -> None:
    base = KnowledgeBase.from_strings(
        "%(Hep(x) | Jaun(x); x) ~=[1] 0.8",
        "%(Hep(x); x) <~[2] 0.05",
        "%(Hep(x) | Jaun(x) and Fever(x); x) ~=[3] 1",
        "Jaun(Eric)",
    )
    session = open_session(base)

    print("1. Direct inference and specificity")
    show(session, "Pr(Hep(Eric) | jaundice)", "Hep(Eric)")
    with open_session(base.conjoin("Fever(Eric)")) as fever_session:
        show(fever_session, "Pr(Hep(Eric) | jaundice, fever)  -- more specific class", "Hep(Eric)")
    with open_session(base.conjoin("Tall(Eric)", "Smoker(Eric)")) as noisy_session:
        show(noisy_session, "Pr(Hep(Eric) | jaundice, tall, smoker) -- irrelevant info", "Hep(Eric)")

    print()
    print("2. Information about other patients does not interfere")
    with open_session(base.conjoin("Hep(Tom)")) as tom_session:
        show(tom_session, "Pr(Hep(Eric) | ... and Hep(Tom))", "Hep(Eric)")

    print()
    print("3. Independence across unrelated findings (Theorem 5.27)")
    with_age = base.conjoin("Patient(Eric)", "%(Over60(x) | Patient(x); x) ~=[5] 0.4")
    with open_session(with_age) as age_session:
        show(age_session, "Pr(Over60(Eric))", "Over60(Eric)")
        response = age_session.submit("Hep(Eric) and Over60(Eric)")
        print(
            f"  {'Pr(Hep(Eric) and Over60(Eric)) = 0.8 x 0.4':<58} "
            f"{response.value:.4f}     [{response.result.method}]"
        )

    print()
    print("4. Every solver answers the same request schema")
    print(f"  applicable solvers: {', '.join(session.solvers_for('Hep(Eric)'))}")
    for method in ("analytic", "maxent", "counting", "reference-class:reichenbach", "reference-class:kyburg"):
        show(session, f"method={method}", "Hep(Eric)", method=method)

    session.close()


if __name__ == "__main__":
    main()
