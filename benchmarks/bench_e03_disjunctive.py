"""E3 — disjunctive reference classes: Tay-Sachs and the spurious class (Examples 5.11, 5.22)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e03_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E3"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e03_tay_sachs_latency(benchmark, engine):
    result = benchmark(engine.degree_of_belief, "TS(Eric)", paper_kbs.tay_sachs())
    assert result.approximately(0.02)
