"""E21 — per-query memoisation and sharded evaluation on the warm path.

PR 2 made a warm batch skip the class *enumeration*; this experiment gates
the two levers layered on top of it: a :class:`QueryMemoTable` that answers
an identical repeated query in O(1) (>= 2x over the memo-less warm path,
measured far higher), and evaluation sharding that re-walks a large cached
decomposition's class blocks across worker processes (Fraction-identical
merge, wall-clock gated on 4+ core hosts only).  The engine-level test keeps
the end-to-end batch honest: a memoised engine's warm batch must equal the
memo-less engine's answers with exactly one evaluation per (grid point,
distinct query) pair.
"""

from conftest import assert_rows_pass

from repro.core import RandomWorlds
from repro.experiments import run_experiment
from repro.experiments.definitions import (
    E19_DISTINCT_QUERIES,
    E19_DOMAIN_SIZES,
    E19_REPEATS,
)
from repro.workloads import paper_kbs


def test_e21_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E21"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e21_engine_memo_batch_matches_memoless(benchmark):
    """A warm memoised engine batch equals the PR 2 (memo-less) warm batch."""
    kb = paper_kbs.lottery(5)
    queries = list(E19_DISTINCT_QUERIES) * E19_REPEATS
    memoless_engine = RandomWorlds(domain_sizes=E19_DOMAIN_SIZES, memo=False)
    expected = memoless_engine.degree_of_belief_batch(queries, kb)

    engine = RandomWorlds(domain_sizes=E19_DOMAIN_SIZES)  # memo on by default
    engine.degree_of_belief_batch(queries, kb)  # warm the decompositions + memo
    results = benchmark.pedantic(
        engine.degree_of_belief_batch, args=(queries, kb), rounds=1, iterations=1
    )

    assert [r.value for r in results] == [r.value for r in expected]
    assert [r.method for r in results] == [r.method for r in expected]
    info = engine.cache_info()
    grid_points = len(E19_DOMAIN_SIZES) * len(tuple(engine.tolerances))
    distinct = len(E19_DISTINCT_QUERIES)
    # one evaluation per (grid point, distinct query); every repeat — and the
    # entire second batch — is served from the memo in O(1)
    assert info is not None and info.memo_misses == distinct * grid_points
    assert info.memo_hits == (2 * E19_REPEATS - 1) * distinct * grid_points
    assert info.memo_entries == distinct * grid_points
