"""E24 — the compiled query-evaluation kernel.

Every exact answer used to pay a recursive ``StructureEvaluator`` tree walk
per isomorphism class; the compiled kernel replaces that walk with a flat
bitset program built once per ``(decomposition, query)`` pair and cached
alongside the memo table.  This experiment gates the kernel both ways:
Fraction-identical answers to the interpreted evaluator on every benchmark
KB across all three backends (workers run the shipped program, never a local
recompilation), and a >= 5x serial-throughput margin on the warm E18 grid.
The measured compiled-vs-interpreted ratio is recorded in the
``BENCH_results.json`` metrics block so the kernel's speedup trends
PR-over-PR.
"""

import time

from conftest import assert_rows_pass, record_metric

from repro.experiments import run_experiment
from repro.experiments.definitions import E24_DOMAIN_SIZES, E24_REPEATS, E24_TOLERANCE
from repro.logic.parser import parse
from repro.logic.tolerance import ToleranceVector
from repro.workloads import paper_kbs
from repro.worlds.cache import WorldCountCache
from repro.worlds.counting import make_counter


def test_e24_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E24"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e24_compiled_throughput_metric(benchmark):
    """Record the raw compiled-vs-interpreted throughput ratio for trending.

    Same shape as E24's throughput leg (warm decompositions, E18 grid,
    serial), but run directly so the recorded metric is the measurement, not
    the gate verdict.
    """
    kb = paper_kbs.hepatitis_simple()
    query = parse("Hep(Eric)")
    tolerance = ToleranceVector.uniform(E24_TOLERANCE)

    grids = []
    for domain_size in E24_DOMAIN_SIZES:
        compiled_counter = make_counter(kb.vocabulary, cache=WorldCountCache())
        interpreted_counter = make_counter(
            kb.vocabulary, cache=WorldCountCache(), compile_queries=False
        )
        grids.append(
            (
                compiled_counter,
                compiled_counter.decompose(kb.formula, domain_size, tolerance),
                interpreted_counter,
                interpreted_counter.decompose(kb.formula, domain_size, tolerance),
            )
        )

    def compiled_pass():
        for counter, decomposition, _, _ in grids:
            for _ in range(E24_REPEATS):
                counter.evaluate_query(decomposition, query, tolerance)

    compiled_pass()  # warm the program cache before timing
    benchmark.pedantic(compiled_pass, rounds=1, iterations=1)

    start = time.perf_counter()
    compiled_pass()
    compiled_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for _, _, counter, decomposition in grids:
        for _ in range(E24_REPEATS):
            counter.evaluate_query(decomposition, query, tolerance)
    interpreted_elapsed = time.perf_counter() - start

    expected = [
        interpreted.evaluate_query(decomposition_i, query, tolerance)
        for _, _, interpreted, decomposition_i in grids
    ]
    actual = [
        compiled.evaluate_query(decomposition_c, query, tolerance)
        for compiled, decomposition_c, _, _ in grids
    ]
    assert [(r.satisfying_kb, r.satisfying_both) for r in actual] == [
        (r.satisfying_kb, r.satisfying_both) for r in expected
    ]

    record_metric("e24_compiled_eval_seconds", round(compiled_elapsed, 6))
    record_metric("e24_interpreted_eval_seconds", round(interpreted_elapsed, 6))
    record_metric(
        "e24_compiled_speedup",
        round(interpreted_elapsed / compiled_elapsed, 2) if compiled_elapsed > 0 else None,
    )
