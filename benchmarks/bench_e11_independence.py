"""E11 — independence across disjoint subvocabularies (Theorem 5.27, Example 5.28)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.logic import parse
from repro.workloads import paper_kbs


def test_e11_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E11"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e11_independence_latency(benchmark, engine):
    kb = paper_kbs.hepatitis_and_age()
    result = benchmark(engine.degree_of_belief, parse("Hep(Eric) and Over60(Eric)"), kb)
    assert result.approximately(0.32, tolerance=1e-3)
