"""E5 — quantified and nested defaults (Examples 5.13, 5.14)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e05_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E5"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e05_nested_default_latency(benchmark, engine):
    kb = paper_kbs.bed_late()
    result = benchmark(
        engine.degree_of_belief, "%(RisesLate(Alice, y) | Day(y); y) ~=[1] 1", kb
    )
    assert result.approximately(1.0)
