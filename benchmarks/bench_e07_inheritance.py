"""E7 — exceptional-subclass inheritance and the drowning problem (Examples 5.20, 5.21, 5.15)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e07_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E7"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e07_taxonomy_latency(benchmark, engine):
    kb = paper_kbs.swimming_taxonomy()
    result = benchmark(engine.degree_of_belief, "Swims(Opus)", kb)
    assert result.approximately(0.9)
