"""E22 — the belief-service session API: warm sessions over every family.

Gates the serve-layer shape of the service: a warm
:class:`~repro.service.BeliefSession` answers a mixed 100-query workload at
least 2x faster than constructing a fresh engine per query, with answers
identical to the legacy per-query path; ``reference-class:*`` and
``defaults:*`` requests flow through the same ``submit`` path and the same
response schema; and every response survives a real JSON round trip.  The
engine-level test keeps the shim honest: ``degree_of_belief_batch`` (now a
thin shim over a private session) and an explicit session must agree answer
for answer, with identical cache counters.
"""

from conftest import assert_rows_pass

from repro.core import RandomWorlds
from repro.experiments import run_experiment
from repro.experiments.definitions import (
    E19_DISTINCT_QUERIES,
    E19_DOMAIN_SIZES,
    E19_REPEATS,
)
from repro.service import QueryRequest, open_session
from repro.workloads import paper_kbs


def test_e22_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E22"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e22_session_matches_legacy_batch(benchmark):
    """An explicit session and the legacy batch shim agree exactly."""
    kb = paper_kbs.lottery(5)
    queries = list(E19_DISTINCT_QUERIES) * E19_REPEATS

    legacy_engine = RandomWorlds(domain_sizes=E19_DOMAIN_SIZES)
    expected = legacy_engine.degree_of_belief_batch(queries, kb)

    session = open_session(kb, domain_sizes=E19_DOMAIN_SIZES)
    responses = benchmark.pedantic(
        session.submit_many,
        args=([QueryRequest(query=text) for text in queries],),
        rounds=1,
        iterations=1,
    )

    assert [r.result for r in responses] == expected
    assert session.cache_info() == legacy_engine.cache_info()
    assert all(r.solver == "random-worlds" for r in responses)
