"""E15 — representation dependence of induced degrees of belief (Section 7.2)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e15_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E15"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e15_refined_vocabulary_latency(benchmark, engine):
    kb = paper_kbs.flying_birds_refined()
    result = benchmark(engine.degree_of_belief, "Bird(Opus)", kb)
    assert result.approximately(2.0 / 3.0, tolerance=1e-3)
