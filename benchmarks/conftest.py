"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's index: it times
the underlying computation with pytest-benchmark and asserts that the measured
values still match the paper's predictions (so a performance run doubles as a
reproduction run).
"""

from __future__ import annotations

import pytest

from repro.core import RandomWorlds


@pytest.fixture(scope="session")
def engine() -> RandomWorlds:
    """A shared engine with the default tolerance ladder."""
    return RandomWorlds()


@pytest.fixture(scope="session")
def small_domain_engine() -> RandomWorlds:
    """An engine restricted to small domains for counting-heavy benchmarks."""
    return RandomWorlds(domain_sizes=(8, 12, 16, 20))


def assert_rows_pass(rows) -> None:
    """Fail with a readable message when any reproduction row mismatches."""
    failures = [row for row in rows if not row.ok]
    assert not failures, "reproduction mismatches: " + "; ".join(
        f"{row.label}: paper={row.paper_value} measured={row.measured}" for row in failures
    )
