"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's index: it times
the underlying computation with pytest-benchmark and asserts that the measured
values still match the paper's predictions (so a performance run doubles as a
reproduction run).

At session end the suite writes a ``BENCH_results.json`` artifact (per-test
outcomes and durations, plus pytest-benchmark statistics when timing is
enabled) so CI can track the performance trajectory PR-over-PR.  Set
``BENCH_RESULTS_PATH`` to redirect it, or to an empty string to disable it.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

import pytest

# Allow running the benchmarks without installing the package (mirrors
# tests/conftest.py): put src/ on the path if repro is not importable.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

from repro.core import RandomWorlds  # noqa: E402

_TEST_RECORDS: dict[str, dict[str, object]] = {}
_METRICS: dict[str, object] = {}


def record_metric(name: str, value) -> None:
    """Record one named scalar in the ``metrics`` block of BENCH_results.json.

    Benchmarks use this for derived measurements (throughput ratios, cache
    rates) that pytest-benchmark's per-test statistics do not capture, so the
    artifact can trend them PR-over-PR.
    """
    _METRICS[name] = value


@pytest.fixture(scope="session")
def engine() -> RandomWorlds:
    """A shared engine with the default tolerance ladder."""
    return RandomWorlds()


@pytest.fixture(scope="session")
def small_domain_engine() -> RandomWorlds:
    """An engine restricted to small domains for counting-heavy benchmarks."""
    return RandomWorlds(domain_sizes=(8, 12, 16, 20))


def assert_rows_pass(rows) -> None:
    """Fail with a readable message when any reproduction row mismatches."""
    failures = [row for row in rows if not row.ok]
    assert not failures, "reproduction mismatches: " + "; ".join(
        f"{row.label}: paper={row.paper_value} measured={row.measured}" for row in failures
    )


# -- BENCH_results.json ------------------------------------------------------


def pytest_runtest_logreport(report) -> None:
    if report.when == "call":
        _TEST_RECORDS[report.nodeid] = {
            "outcome": report.outcome,
            "duration_seconds": round(report.duration, 6),
        }
    elif report.outcome != "passed" and report.nodeid not in _TEST_RECORDS:
        # Marker skips and setup/teardown errors never reach the call phase;
        # record them so the trend artifact distinguishes "skipped/errored"
        # from "test deleted".
        _TEST_RECORDS[report.nodeid] = {
            "outcome": report.outcome,
            "phase": report.when,
            "duration_seconds": round(report.duration, 6),
        }


def _benchmark_records(config) -> list:
    """Extract pytest-benchmark statistics (empty with ``--benchmark-disable``)."""
    session = getattr(config, "_benchmarksession", None)
    records = []
    for bench in getattr(session, "benchmarks", []) or []:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        try:
            records.append(
                {
                    "name": bench.name,
                    "group": bench.group,
                    "rounds": stats.rounds,
                    "min_seconds": stats.min,
                    "mean_seconds": stats.mean,
                    "stddev_seconds": stats.stddev,
                }
            )
        except (AttributeError, TypeError):  # pragma: no cover - stats layout drift
            continue
    return records


def pytest_sessionfinish(session, exitstatus) -> None:
    path = os.environ.get(
        "BENCH_RESULTS_PATH", os.path.join(str(session.config.rootpath), "BENCH_results.json")
    )
    if not path:
        return
    payload = {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "exit_status": int(exitstatus),
        "num_tests": len(_TEST_RECORDS),
        "tests": _TEST_RECORDS,
        "benchmarks": _benchmark_records(session.config),
        "metrics": dict(_METRICS),
    }
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError:  # pragma: no cover - read-only checkout etc.
        pass
