"""E9 — Goodwin's moody magpies: too-specific information is combined (Example 5.25)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e09_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E9"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e09_maxent_combination_latency(benchmark, engine):
    kb = paper_kbs.moody_magpie()
    result = benchmark(engine.degree_of_belief, "Chirps(Tweety)", kb)
    assert result.value is not None and result.value < 0.9
