"""E19 — the world-count cache amortises enumeration across batched queries.

A repeated-query workload against the lottery KB (which forces the exact
counting path) is answered twice: sequentially with caching disabled, and as
one ``degree_of_belief_batch`` sharing a :class:`WorldCountCache`.  The
experiment asserts the answers are identical and the batch is >= 3x faster;
this file also times the steady-state (fully warm) batch latency.
"""

from conftest import assert_rows_pass

from repro.core import RandomWorlds
from repro.experiments import run_experiment
from repro.experiments.definitions import E19_DISTINCT_QUERIES, E19_DOMAIN_SIZES, E19_REPEATS
from repro.workloads import paper_kbs


def test_e19_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E19"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e19_warm_batch_latency(benchmark):
    """Steady-state latency of a batch once the cache holds every grid point."""
    kb = paper_kbs.lottery(5)
    queries = list(E19_DISTINCT_QUERIES) * E19_REPEATS
    engine = RandomWorlds(domain_sizes=E19_DOMAIN_SIZES)
    engine.degree_of_belief_batch(queries, kb)  # populate the cache

    results = benchmark(engine.degree_of_belief_batch, queries, kb)

    info = engine.cache_info()
    assert info is not None and info.misses == len(E19_DOMAIN_SIZES) * len(tuple(engine.tolerances))
    assert all(result.method == "counting" for result in results)
    assert results[0].approximately(0.2)  # Pr(Winner(C)) = 1/5
