"""E28 — record/replay traffic harness: identity and throughput over HTTP.

The serving claim the traffic harness exists to gate: a recorded
mixed-tenant trace replayed against a live ``repro-serve`` endpoint
reproduces every recorded answer *Fraction-identically* (volatile timing
and cache counters aside), including injected mid-stream ``ErrorResponse``
rows — while the per-session memo keeps sustained replay throughput in
request-per-millisecond territory once each KB's unique queries are warm.

The trace is synthesized from the seeded scenario corpus with the
in-process oracle attached, so the replay compares two independently
constructed engine stacks (oracle session vs. served session) across the
wire codec.  Throughput and identity counts land in the
``BENCH_results.json`` metrics block so the serving path trends
PR-over-PR.
"""

import time

from conftest import record_metric

from repro.server import Client, SessionManager, serve_in_background
from repro.traffic import replay_trace, synthesize_trace

# >= 1000 individual query requests, several tenants sharing zipf-skewed
# corpus KBs, a malformed request injected into ~15% of streams.  Small
# domain schedule keeps the unique-query warmup in analytic/maxent
# territory; everything after is memo hits on both sides.
REQUESTS = 1000
TENANTS = 4
KBS = 5
SEED = 28
ENGINE = {"domain_sizes": [6, 8]}


def test_e28_replay_identity_and_throughput(benchmark):
    synth_start = time.perf_counter()
    trace = synthesize_trace(
        requests=REQUESTS, tenants=TENANTS, kbs=KBS, seed=SEED, engine=ENGINE
    )
    synth_elapsed = time.perf_counter() - synth_start

    with serve_in_background(SessionManager(max_sessions=KBS + 2)) as server:
        client = Client(server.url)
        report = benchmark.pedantic(
            lambda: replay_trace(trace, client), rounds=1, iterations=1
        )

    assert report.ok, [mismatch.describe() for mismatch in report.mismatches[:5]]
    assert report.requests >= REQUESTS
    assert report.verified == report.requests  # the oracle answered everything
    assert report.identical == report.verified  # 100% Fraction-identity
    assert report.identity_ratio == 1.0
    assert report.opens == KBS

    record_metric("e28_trace_requests", report.requests)
    record_metric("e28_trace_events", report.events)
    record_metric("e28_replay_verified", report.verified)
    record_metric("e28_replay_identical", report.identical)
    record_metric("e28_replay_identity_ratio", report.identity_ratio)
    record_metric("e28_replay_wall_seconds", round(report.wall_s, 6))
    record_metric("e28_replay_requests_per_second", round(report.requests_per_second, 3))
    record_metric("e28_synth_seconds", round(synth_elapsed, 6))
