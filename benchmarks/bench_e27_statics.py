"""E27 — the concurrency-discipline analyzer's wall-clock budget.

``repro-lint-code`` runs as a pre-merge gate over the whole codebase, so
its cost is paid on every CI run and every pre-commit invocation: the
corpus-wide lock discovery plus per-function held-stack walk must stay a
few seconds, not minutes.  This benchmark runs the full analyzer (lock
discipline over ``src/`` and ``tools/`` plus the absorbed exactness
checks) exactly as the CI gate does and records the wall-clock totals in
the ``BENCH_results.json`` metrics block, so the analyzer's cost trends
PR-over-PR.  It also gates the property the CI step relies on: the repo
is clean — zero lock-discipline findings, zero exactness findings.
"""

import time
from pathlib import Path

from conftest import record_metric

from repro.statics.exactness import exactness_diagnostics, find_repo_root
from repro.statics.locks import iter_python_files, lint_paths

REPO = find_repo_root(Path(__file__).resolve().parent)
LINT_ROOTS = [str(REPO / "src"), str(REPO / "tools")]

# The gate runs on every CI leg and locally before each merge; an analyzer
# that stops being pure AST work (imports the code, enumerates worlds)
# shows up as an order-of-magnitude jump against this deliberately loose
# bound.
SUITE_BUDGET_SECONDS = 15.0


def _sweep():
    return lint_paths(LINT_ROOTS), exactness_diagnostics(REPO)


def test_e27_statics_wallclock_metric(benchmark):
    _sweep()  # warm import-time and filesystem caches before timing
    benchmark.pedantic(_sweep, rounds=1, iterations=1)

    start = time.perf_counter()
    lock_findings, exactness_findings = _sweep()
    elapsed = time.perf_counter() - start

    assert lock_findings == [], (
        "the repo must be clean under its own lock-discipline analyzer: "
        f"{[finding.format() for finding in lock_findings]}"
    )
    assert exactness_findings == [], (
        "the exact-counting hot paths regressed the exactness lint: "
        f"{[finding.format() for finding in exactness_findings]}"
    )
    assert elapsed < SUITE_BUDGET_SECONDS, (
        f"repo-wide repro-lint-code took {elapsed:.2f}s; the gate must stay "
        "cheap enough to run on every merge"
    )

    analyzed = len(list(iter_python_files(LINT_ROOTS)))
    record_metric("e27_statics_suite_seconds", round(elapsed, 6))
    record_metric("e27_statics_files_analyzed", analyzed)
    record_metric(
        "e27_statics_mean_file_ms", round(elapsed * 1000.0 / max(analyzed, 1), 3)
    )
