"""E16 — KLM properties of |~rw and the reference-class baselines (Theorem 5.3, Section 2.3)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.reference_class import BaselineComparison
from repro.workloads import paper_kbs


def test_e16_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E16"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e16_baseline_comparison_latency(benchmark):
    comparison = BaselineComparison()
    row = benchmark(comparison.compare, "Heart(Fred)", paper_kbs.fred_heart_disease())
    assert row.reichenbach.vacuous and not row.random_worlds.value is None
