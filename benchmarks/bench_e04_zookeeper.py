"""E4 — open defaults over pairs: elephants and zookeepers (Example 5.12)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e04_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E4"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e04_pairwise_default_latency(benchmark, engine):
    kb = paper_kbs.elephant_zookeeper()
    result = benchmark(engine.degree_of_belief, "Likes(Clyde, Eric)", kb)
    assert result.approximately(1.0)
