"""E8 — the strength rule on a chain of reference classes (Theorem 5.23, Example 5.24)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e08_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E8"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e08_strength_latency(benchmark, engine):
    kb = paper_kbs.chirping_magpie()
    result = benchmark(engine.degree_of_belief, "Chirps(Tweety)", kb)
    assert result.within(0.7, 0.8)
