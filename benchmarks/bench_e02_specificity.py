"""E2 — specificity: Tweety the (yellow) penguin (Examples 5.10, 5.19)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e02_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E2"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e02_specificity_latency(benchmark, engine):
    kb = paper_kbs.tweety_yellow()
    result = benchmark(engine.degree_of_belief, "Fly(Tweety)", kb)
    assert result.approximately(0.0)
