"""E13 — the lottery paradox and the unique-names bias (Section 5.5)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e13_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E13"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e13_lottery_latency(benchmark, small_domain_engine):
    kb = paper_kbs.lottery(5)
    result = benchmark(small_domain_engine.degree_of_belief, "Winner(C)", kb)
    assert result.approximately(0.2, tolerance=1e-3)
