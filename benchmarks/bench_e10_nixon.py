"""E10 — the Nixon diamond and Dempster combination (Theorem 5.26, Section 5.3)."""

from conftest import assert_rows_pass

from repro.evidence import dempster_combine
from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e10_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E10"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e10_combination_latency(benchmark, engine):
    kb = paper_kbs.nixon_diamond(0.8, 0.8)
    result = benchmark(engine.degree_of_belief, "Pacifist(Nixon)", kb)
    assert result.approximately(dempster_combine([0.8, 0.8]), tolerance=1e-6)
