"""E25 — the static pre-flight analyzer's wall-clock budget.

The analyzer's whole value proposition is answering *before* any
enumeration: a strict-mode open must be able to refuse a pathological KB
in milliseconds.  This benchmark sweeps ``analyze()`` (well-formedness +
compilability + cost prediction) over every benchmark KB with its
standard query and records the wall-clock totals in the
``BENCH_results.json`` metrics block, so the analyzer's cost trends
PR-over-PR.  It also gates the two properties the suite relies on: the
benchmark KBs are free of error-level diagnostics (the repro-lint CI gate
assumes this), and a full-suite sweep stays under an order of magnitude
headroom of the interactive budget.
"""

import time

from conftest import record_metric

from repro import analysis
from repro.workloads import paper_kbs

# One full analyze() pass over all 23 KBs must stay interactive.  The
# strict-gate acceptance budget is 50 ms per KB; the sweep bound below is
# deliberately loose (CI machines vary) while still catching a regression
# that makes the analyzer enumerate instead of predict.
SUITE_BUDGET_SECONDS = 5.0


def _sweep():
    reports = []
    for name, factory, query in paper_kbs.benchmark_suite():
        reports.append((name, analysis.analyze(factory(), queries=[query])))
    return reports


def test_e25_analyzer_wallclock_metric(benchmark):
    reports = _sweep()  # warm import-time caches before timing
    benchmark.pedantic(_sweep, rounds=1, iterations=1)

    start = time.perf_counter()
    reports = _sweep()
    elapsed = time.perf_counter() - start

    for name, report in reports:
        assert not report.has_errors, (
            f"benchmark KB {name!r} has error-level diagnostics: "
            f"{[d.code for d in report.errors]}"
        )
        assert report.compilability, name
        assert report.costs, name
    assert elapsed < SUITE_BUDGET_SECONDS, (
        f"analyzing the {len(reports)}-KB suite took {elapsed:.2f}s; "
        "the pre-flight analyzer must predict, not enumerate"
    )

    per_kb_ms = [report.elapsed_ms for _, report in reports]
    record_metric("e25_analyzer_suite_seconds", round(elapsed, 6))
    record_metric("e25_analyzer_mean_kb_ms", round(sum(per_kb_ms) / len(per_kb_ms), 3))
    record_metric("e25_analyzer_max_kb_ms", round(max(per_kb_ms), 3))
