"""E1 — direct inference on the hepatitis KB (Example 5.8)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e01_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E1"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e01_direct_inference_latency(benchmark, engine):
    kb = paper_kbs.hepatitis_full()
    result = benchmark(engine.degree_of_belief, "Hep(Eric)", kb)
    assert result.approximately(0.8)
