"""E18 — scaling of the computation paths (Section 7.4).

Sweeps domain size for the exact counter and predicate count for the
max-entropy solver; the benchmark timings themselves are the result.
"""

import pytest
from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.logic import ToleranceVector, parse
from repro.maxent import solve_knowledge_base
from repro.workloads import generators, paper_kbs
from repro.worlds import probability_at


def test_e18_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E18"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


@pytest.mark.parametrize("num_predicates", [2, 4, 6])
def test_e18_maxent_scaling(benchmark, num_predicates):
    kb = generators.random_unary_kb(num_predicates, num_statistics=num_predicates, seed=11)
    solution = benchmark(
        solve_knowledge_base, kb.formula, kb.vocabulary, ToleranceVector.uniform(0.02)
    )
    assert solution.converged


@pytest.mark.parametrize("domain_size", [20, 30, 40])
def test_e18_counting_scaling(benchmark, domain_size):
    kb = paper_kbs.black_birds().with_vocabulary_of("Black(Clyde)")
    probability = benchmark.pedantic(
        probability_at,
        args=(
            parse("Black(Clyde)"),
            kb.formula,
            kb.vocabulary,
            domain_size,
            ToleranceVector.uniform(0.1),
        ),
        rounds=1,
        iterations=1,
    )
    assert 0.35 <= float(probability) <= 0.6
