"""E6 — irrelevance and the most specific statistics (Example 5.18)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e06_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E6"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e06_irrelevant_facts_latency(benchmark, engine):
    kb = paper_kbs.hepatitis_full().conjoin("Fever(Eric)", "Tall(Eric)")
    result = benchmark(engine.degree_of_belief, "Hep(Eric)", kb)
    assert result.approximately(1.0)
