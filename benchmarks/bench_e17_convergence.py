"""E17 — convergence of the exact finite counts Pr^tau_N to the limits (Section 4.2).

This regenerates the "convergence figure": the series of exact probabilities
for growing N at fixed tolerance, for three representative knowledge bases.
"""

import pytest
from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.logic import ToleranceVector, Vocabulary, parse
from repro.workloads import paper_kbs
from repro.worlds import probability_at


def test_e17_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E17"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


@pytest.mark.parametrize("domain_size", [10, 20, 30])
def test_e17_counting_latency(benchmark, domain_size):
    kb = paper_kbs.hepatitis_simple()
    vocabulary = kb.vocabulary.merge(Vocabulary.from_formulas([parse("Hep(Eric)")]))
    probability = benchmark(
        probability_at,
        parse("Hep(Eric)"),
        kb.formula,
        vocabulary,
        domain_size,
        ToleranceVector.uniform(0.02),
    )
    assert 0.7 <= float(probability) <= 0.85
