"""E14 — the Section 6 max-entropy example and the GMP90 embedding (Theorem 6.1)."""

from conftest import assert_rows_pass

from repro.defaults import DefaultRule, MaxEntDefaultReasoner, RuleSet
from repro.experiments import run_experiment


def test_e14_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E14"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e14_gmp90_embedding_latency(benchmark):
    rules = RuleSet.parse("Bird -> Fly", "Penguin -> not Fly", "Penguin -> Bird", "Bird -> Warm")
    reasoner = MaxEntDefaultReasoner(rules, shared_tolerance=True)
    query = DefaultRule.parse("Penguin -> Warm")
    outcome = benchmark(reasoner.me_plausible, query)
    assert outcome.accepted
