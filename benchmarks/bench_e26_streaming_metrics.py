"""E26 — the streaming front-end and the observability layer.

Three gates over real sockets:

* **Identity** — every NDJSON row streamed by ``POST .../stream`` is
  byte-identical (modulo the timing field) to the row ``query_batch`` serves
  for the same request, exact ``Fraction`` diagnostics included.  Streaming
  is a delivery mode, not a different computation.
* **Incrementality** — on a long cold workload the first streamed row
  arrives well before the batch finishes (the row is flushed per answer,
  not buffered until the end).
* **Concurrency** — N clients streaming at once all receive complete,
  ordered batches; the run records aggregate throughput and the server's
  own ``/metrics`` latency histogram into ``BENCH_results.json``, asserting
  the histogram invariant (bucket counts sum to the observation count) and
  counter monotonicity under load.
"""

import json
import threading
import time
import urllib.request

from conftest import record_metric

from repro.server import Client, SessionManager, serve_in_background
from repro.workloads import paper_kbs

DOMAIN_SIZES = (6, 8, 10, 12)
# Distinct formulas over the lottery KB: each row is a separate cold
# enumeration (no memo hits), so per-row cost is roughly uniform — what the
# incrementality gate needs.
STREAM_QUERIES = [
    "Winner(C)",
    "not Winner(C)",
    "Winner(C) and Ticket(C)",
    "Winner(C) or not Ticket(C)",
    "not (Winner(C) and Ticket(C))",
    "Ticket(C) and not Winner(C)",
    "Winner(C) or Winner(C)",
    "not (Winner(C) or not Winner(C))",
]
CONCURRENT_CLIENTS = 4


def _raw_stream_rows(base_url, session_id, requests, timeout=120.0):
    """The raw NDJSON lines (as parsed dicts) with their arrival times."""
    body = json.dumps({"requests": requests}).encode("utf-8")
    request = urllib.request.Request(
        f"{base_url}/v1/sessions/{session_id}/stream",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    rows, arrivals = [], []
    with urllib.request.urlopen(request, timeout=timeout) as response:
        for line in response:
            line = line.strip()
            if line:
                rows.append(json.loads(line.decode("utf-8")))
                arrivals.append(time.perf_counter())
    return rows, arrivals


def test_e26_streamed_rows_are_byte_identical_to_query_batch(benchmark):
    def served():
        manager = SessionManager(domain_sizes=DOMAIN_SIZES)
        with serve_in_background(manager) as server:
            client = Client(server.url)
            session_id = client.open_session(paper_kbs.lottery(5))
            requests = [
                {"query": text, "request_id": f"q{i}"} for i, text in enumerate(STREAM_QUERIES)
            ]
            # Warm once so both surfaces serve from identical cache state.
            client.query_batch(session_id, requests)
            batch = client.call(
                "POST", f"/v1/sessions/{session_id}/query_batch", {"requests": requests}
            )["responses"]
            streamed, _ = _raw_stream_rows(server.url, session_id, requests)
        return batch, streamed

    batch, streamed = benchmark.pedantic(served, rounds=1, iterations=1)

    def frozen(row):
        return json.dumps({**row, "elapsed_ms": 0.0}, sort_keys=True)

    assert len(streamed) == len(STREAM_QUERIES)
    assert [frozen(row) for row in streamed] == [frozen(row) for row in batch]


def test_e26_first_row_arrives_before_the_batch_finishes(benchmark):
    def timed_stream():
        manager = SessionManager(domain_sizes=DOMAIN_SIZES)
        with serve_in_background(manager) as server:
            client = Client(server.url)
            session_id = client.open_session(paper_kbs.lottery(5))
            # Warm the first query only: its streamed row costs ~a memo hit,
            # while the remaining seven are cold enumerations.  A per-row
            # flush therefore puts the first row on the wire almost
            # immediately; a buffer-until-done implementation would hold it
            # until the cold tail finished.
            client.query(session_id, STREAM_QUERIES[0])
            start = time.perf_counter()
            rows, arrivals = _raw_stream_rows(
                server.url, session_id, [{"query": text} for text in STREAM_QUERIES]
            )
        return rows, [arrival - start for arrival in arrivals]

    rows, offsets = benchmark.pedantic(timed_stream, rounds=1, iterations=1)
    assert len(rows) == len(STREAM_QUERIES)
    first, total = offsets[0], offsets[-1]
    record_metric("e26_first_row_seconds", round(first, 6))
    record_metric("e26_stream_total_seconds", round(total, 6))
    record_metric("e26_first_row_fraction", round(first / total, 4))
    # The first answer must be on the wire while most of the batch is still
    # computing — the signature of per-row flushing.
    assert first < 0.5 * total, f"first row at {first:.3f}s of {total:.3f}s total"


def test_e26_concurrent_streaming_clients_and_metrics(benchmark):
    def fan_out():
        manager = SessionManager(max_inflight=CONCURRENT_CLIENTS * 2, domain_sizes=DOMAIN_SIZES)
        with serve_in_background(manager) as server:
            client = Client(server.url)
            session_id = client.open_session(paper_kbs.lottery(5))
            client.query_batch(session_id, [{"query": text} for text in STREAM_QUERIES])

            results = [None] * CONCURRENT_CLIENTS

            def run(slot):
                rows, _ = _raw_stream_rows(
                    server.url, session_id, [{"query": text} for text in STREAM_QUERIES]
                )
                results[slot] = rows

            first_scrape = client.call("GET", "/metrics")["metrics"]
            threads = [
                threading.Thread(target=run, args=(slot,)) for slot in range(CONCURRENT_CLIENTS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            second_scrape = client.call("GET", "/metrics")["metrics"]
        return results, elapsed, first_scrape, second_scrape

    results, elapsed, first_scrape, second_scrape = benchmark.pedantic(
        fan_out, rounds=1, iterations=1
    )

    # Every client got the complete batch, in submission order.
    for rows in results:
        assert rows is not None and len(rows) == len(STREAM_QUERIES)
        assert all("result" in row for row in rows)

    total_rows = CONCURRENT_CLIENTS * len(STREAM_QUERIES)
    record_metric("e26_concurrent_clients", CONCURRENT_CLIENTS)
    record_metric("e26_streamed_rows_per_second", round(total_rows / elapsed, 2))

    # The server's own histogram obeys the bucket invariant and the route
    # counters only ever moved up between the two scrapes.
    latency = second_scrape["repro_http_request_latency_ms"]["values"]
    for row in latency:
        assert sum(bucket["count"] for bucket in row["buckets"]) == row["count"]
    stream_rows = [
        row for row in latency if row["labels"].get("route") == "/v1/sessions/{id}/stream"
    ]
    assert stream_rows, "no latency histogram for the stream route"
    record_metric("e26_stream_route_observations", stream_rows[0]["count"])
    record_metric("e26_stream_route_mean_latency_ms", round(stream_rows[0]["sum"] / stream_rows[0]["count"], 3))

    before = {
        tuple(sorted(row["labels"].items())): row["value"]
        for row in first_scrape.get("repro_http_responses_total", {}).get("values", ())
    }
    for row in second_scrape["repro_http_responses_total"]["values"]:
        key = tuple(sorted(row["labels"].items()))
        assert row["value"] >= before.get(key, 0), f"counter went backwards: {key}"
