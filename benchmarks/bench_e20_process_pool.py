"""E20 — the process-pool backend parallelises exact counting across cores.

The E18 counting scaling grid (hepatitis KB, N up to 60) is answered with the
serial, thread and process backends.  The experiment asserts the probabilities
are ``Fraction``-identical on every backend and — on hosts with >= 2 cores —
that the process pool beats the serial wall clock by >= 2x with >= 2 workers;
this file also times an engine-level batch on the process backend to keep the
end-to-end dispatch (grid points, not whole queries, go to the pool) honest.
"""

from conftest import assert_rows_pass

from repro.core import RandomWorlds
from repro.experiments import run_experiment
from repro.experiments.definitions import E19_DOMAIN_SIZES, E19_DISTINCT_QUERIES
from repro.workloads import paper_kbs


def test_e20_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E20"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e20_engine_batch_on_the_process_backend(benchmark):
    """Batch answers through a process-backed engine match the serial engine."""
    kb = paper_kbs.lottery(5)
    queries = list(E19_DISTINCT_QUERIES)
    serial_engine = RandomWorlds(domain_sizes=E19_DOMAIN_SIZES)
    expected = serial_engine.degree_of_belief_batch(queries, kb)

    with RandomWorlds(domain_sizes=E19_DOMAIN_SIZES, backend="processes", max_workers=2) as engine:
        results = benchmark.pedantic(
            engine.degree_of_belief_batch, args=(queries, kb), rounds=1, iterations=1
        )
        info = engine.cache_info()

    assert [r.value for r in results] == [r.value for r in expected]
    assert [r.method for r in results] == [r.method for r in expected]
    grid_points = len(E19_DOMAIN_SIZES) * len(tuple(serial_engine.tolerances))
    assert info is not None and info.misses == grid_points
