"""E12 — maximum entropy on the black-birds KB (Example 5.29)."""

from conftest import assert_rows_pass

from repro.experiments import run_experiment
from repro.workloads import paper_kbs


def test_e12_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E12"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e12_maxent_latency(benchmark, engine):
    kb = paper_kbs.black_birds().with_vocabulary_of("Black(Clyde)")
    result = benchmark(engine.degree_of_belief, "Black(Clyde)", kb)
    assert result.approximately(0.47, tolerance=0.005)
