"""E23 — the HTTP service front-end: served answers == in-process answers.

Gates the serve layer end to end over real sockets: a warm served session
answers the mixed lottery workload at least 2x faster than a fresh
in-process engine per query (the HTTP framing must not eat E22's
amortisation), a saturated admission gate answers 429 deterministically,
and — the load-bearing property — every HTTP ``BeliefResponse`` decodes to
a result exactly equal (same floats, same exact ``Fraction`` diagnostics)
to in-process ``session.submit_many``.  The sweep below asserts that
identity on every benchmark KB, so no KB fragment can drift between the
wire codec and the in-process path.
"""

from conftest import assert_rows_pass

from repro.core import RandomWorldsError
from repro.experiments import run_experiment
from repro.server import Client, ServerError, SessionManager, serve_in_background
from repro.service import open_session
from repro.workloads import paper_kbs

# The cross-suite benchmark KBs (mirrors tests/test_worlds_cache.py), each
# with a query probing its characteristic inference path.  KBs travel as
# kb_payload wire objects (sentence text + explicit vocabulary), so the
# served KB is fingerprint-identical to the in-process one.
SERVED_KBS = [
    ("hepatitis_simple", paper_kbs.hepatitis_simple, "Hep(Eric)"),
    ("hepatitis_full", paper_kbs.hepatitis_full, "Hep(Eric)"),
    ("tweety_fly", paper_kbs.tweety_fly, "Fly(Tweety)"),
    ("tweety_yellow", paper_kbs.tweety_yellow, "Fly(Tweety)"),
    ("tweety_warm_blooded", paper_kbs.tweety_warm_blooded, "WarmBlooded(Tweety)"),
    ("tweety_easy_to_see", paper_kbs.tweety_easy_to_see, "EasyToSee(Tweety)"),
    ("tay_sachs", paper_kbs.tay_sachs, "TS(Eric)"),
    ("elephant_zookeeper", paper_kbs.elephant_zookeeper, "Likes(Clyde, Fred)"),
    ("chirping_magpie", paper_kbs.chirping_magpie, "Chirps(Tweety)"),
    ("moody_magpie", paper_kbs.moody_magpie, "Chirps(Tweety)"),
    ("nixon_diamond", paper_kbs.nixon_diamond, "Pacifist(Nixon)"),
    ("fred_heart_disease", paper_kbs.fred_heart_disease, "Heart(Fred)"),
    ("hepatitis_and_age", paper_kbs.hepatitis_and_age, "Hep(Eric) and Over60(Eric)"),
    ("black_birds", paper_kbs.black_birds, "Black(Clyde)"),
    ("lottery", paper_kbs.lottery, "Winner(C)"),
    ("lifschitz_names", paper_kbs.lifschitz_names, "not (Ray = Drew)"),
    ("broken_arm", paper_kbs.broken_arm, "LeftUsable(Eric)"),
    ("colours_two_way", paper_kbs.colours_two_way, "White(Block)"),
    ("colours_three_way", paper_kbs.colours_three_way, "White(Block)"),
    ("flying_birds_two_predicates", paper_kbs.flying_birds_two_predicates, "Fly(Tweety)"),
    ("flying_birds_refined", paper_kbs.flying_birds_refined, "FlyingBird(Tweety)"),
    ("swimming_taxonomy", paper_kbs.swimming_taxonomy, "Swims(Opus)"),
    ("tall_parent", paper_kbs.tall_parent, "Tall(Alice)"),
]

DOMAIN_SIZES = (6, 8, 10, 12)


def test_e23_rows_reproduce(benchmark):
    result = benchmark.pedantic(lambda: run_experiment("E23"), rounds=1, iterations=1)
    assert_rows_pass(result.rows)


def test_e23_http_matches_inprocess_on_every_benchmark_kb(benchmark):
    """One server, every benchmark KB: served results == in-process results.

    Both sides open their session from the same wire payload (the sentence
    texts), so the equality below is between two independently constructed
    engine stacks — one behind HTTP framing — not between a session and a
    copy of itself.  Queries run each KB's characteristic query, its
    negation, and a repeat (to cross the memo path on both sides).  KBs the
    engine cannot answer at these domain sizes must fail identically: an
    in-process ``RandomWorldsError`` has to surface as HTTP 422
    ``query-failed``, never as a different answer.
    """

    def served_and_local():
        pairs = []
        manager = SessionManager(max_sessions=len(SERVED_KBS), domain_sizes=DOMAIN_SIZES)
        with serve_in_background(manager) as server:
            client = Client(server.url)
            for name, factory, query_text in SERVED_KBS:
                kb = factory()
                queries = [query_text, f"not ({query_text})", query_text]
                with open_session(kb, domain_sizes=DOMAIN_SIZES) as local:
                    try:
                        expected = local.submit_many(queries)
                    except RandomWorldsError:
                        expected = RandomWorldsError
                session_id = client.open_session(kb)
                assert session_id == local.fingerprint  # the wire KB is lossless
                try:
                    served = client.query_batch(session_id, queries)
                except ServerError as error:
                    served = (error.status, error.code)
                pairs.append((name, served, expected))
        return pairs

    pairs = benchmark.pedantic(served_and_local, rounds=1, iterations=1)
    mismatches = []
    for name, served, expected in pairs:
        if expected is RandomWorldsError:
            # The engine cannot answer this KB at these domain sizes; the
            # server must report the same failure as 422, not diverge.
            if served != (422, "query-failed"):
                mismatches.append(name)
        elif isinstance(served, tuple):
            mismatches.append(name)
        elif [r.result for r in served] != [r.result for r in expected] or [
            r.solver for r in served
        ] != [r.solver for r in expected]:
            mismatches.append(name)
    assert not mismatches, f"served answers diverged from in-process answers on: {mismatches}"
